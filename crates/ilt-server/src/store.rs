//! Job admission, bookkeeping, and the bounded work queue.
//!
//! The store is the single synchronization point between HTTP handler
//! threads (submit, poll, list) and the job workers (take, finish). Its
//! admission queue is *bounded*: a submission beyond capacity is refused at
//! the door — the handler turns that into `503 Service Unavailable` with a
//! `Retry-After` hint — so a flood of requests costs the flooder latency
//! instead of costing the server memory. Results stay resident for the life
//! of the process (job state is the API's only storage; there is no
//! database), which is also bounded: completed masks are the only large
//! retained objects and arrive at most queue-capacity + workers at a time.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use ilt_core::{schedules, IltConfig, Stage};
use ilt_field::{parse_pgm, Field2D};
use ilt_layouts::{extended_case, iccad2013_case, via_pattern};
use ilt_metrics::EvalReport;
use ilt_optics::OpticsConfig;
use ilt_runtime::{
    json_escape, json_f64, BatchCase, BatchConfig, JobRecord, SeamPolicy,
};

use crate::http::Request;

/// Where a job's target geometry comes from.
#[derive(Clone, Debug)]
pub enum JobSource {
    /// A built-in benchmark case (`case1`..`case20`).
    Case(usize),
    /// A generated via pattern with the given seed.
    Via(u64),
    /// An inline PGM raster submitted in the request body.
    Inline(Field2D),
}

/// Per-request execution policy bounds, owned by the server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecPolicy {
    /// Default per-attempt timeout, seconds; 0 = none.
    pub default_timeout_s: f64,
    /// Default retry budget per tile job.
    pub default_retries: u32,
    /// Hard cap on per-job worker threads a request may ask for.
    pub max_threads_per_job: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self { default_timeout_s: 0.0, default_retries: 1, max_threads_per_job: 4 }
    }
}

/// A fully validated job specification, decoded from one `POST /v1/jobs`.
///
/// Defaults mirror the `ilt batch` CLI exactly, so a served job with no
/// overrides produces a mask byte-identical to the batch command for the
/// same case (which `verify_server.sh` asserts).
#[derive(Clone, Debug)]
pub struct JobParams {
    /// Target geometry.
    pub source: JobSource,
    /// Display / journal name.
    pub name: String,
    /// Rasterization grid for generated layouts.
    pub grid: usize,
    /// Physical clip width for inline targets, nm.
    pub clip_nm: f64,
    /// SOCS kernel count.
    pub kernels: usize,
    /// Tile window size.
    pub tile: usize,
    /// Tile guard band.
    pub halo: usize,
    /// Seam policy for stitched masks.
    pub seam: SeamPolicy,
    /// Schedule name (`fast`, `exact`, `via`).
    pub schedule: String,
    /// Optional per-stage iteration override.
    pub iters: Option<usize>,
    /// Coarsest admissible effective pitch, nm.
    pub max_eff_nm: f64,
    /// Worker threads inside this job's pool (clamped by [`ExecPolicy`]).
    pub threads: usize,
    /// Per-attempt timeout, seconds; 0 = none.
    pub timeout_s: f64,
    /// Retry budget per tile.
    pub retries: u32,
    /// Evaluate the stitched mask.
    pub evaluate: bool,
}

fn parse_num<T: std::str::FromStr>(req: &Request, key: &str, default: T) -> Result<T, String> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad {key}={raw:?}")),
    }
}

impl JobParams {
    /// Decodes and validates a submission request (query parameters plus an
    /// optional inline PGM body).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter; the
    /// handler maps it to `400 Bad Request`.
    pub fn from_request(req: &Request, policy: &ExecPolicy) -> Result<JobParams, String> {
        let source = match (req.query_param("case"), req.query_param("via"), req.body.is_empty()) {
            (Some(c), None, true) => {
                let id: usize = c
                    .strip_prefix("case")
                    .unwrap_or(c)
                    .parse()
                    .map_err(|_| format!("bad case={c:?}"))?;
                if !(1..=20).contains(&id) {
                    return Err(format!("case ids are 1..=10 (ICCAD) or 11..=20 (extended), got {id}"));
                }
                JobSource::Case(id)
            }
            (None, Some(v), true) => {
                let seed: u64 = v
                    .strip_prefix("via")
                    .unwrap_or(v)
                    .parse()
                    .map_err(|_| format!("bad via={v:?}"))?;
                JobSource::Via(seed)
            }
            (None, None, false) => {
                let img = parse_pgm(&req.body).map_err(|e| format!("bad PGM body: {e}"))?;
                let (rows, cols) = img.shape();
                if rows != cols || !rows.is_power_of_two() {
                    return Err(format!(
                        "inline target must be square power-of-two, got {rows}x{cols}"
                    ));
                }
                JobSource::Inline(img.threshold(0.5))
            }
            (None, None, true) => {
                return Err("submit one of ?case=N, ?via=SEED, or an inline PGM body".into())
            }
            _ => return Err("pass exactly one of ?case, ?via, or an inline PGM body".into()),
        };

        let name = match req.query_param("name") {
            Some(n) if !n.is_empty() => n.to_string(),
            _ => match &source {
                JobSource::Case(id) => format!("case{id}"),
                JobSource::Via(seed) => format!("via{seed}"),
                JobSource::Inline(_) => "inline".to_string(),
            },
        };

        let grid: usize = parse_num(req, "grid", 512)?;
        if !grid.is_power_of_two() || !(32..=4096).contains(&grid) {
            return Err(format!("grid must be a power of two in 32..=4096, got {grid}"));
        }
        let clip_nm: f64 = parse_num(req, "clip_nm", 2048.0)?;
        if !(clip_nm > 0.0) {
            return Err(format!("clip_nm must be positive, got {clip_nm}"));
        }
        let kernels: usize = parse_num(req, "kernels", 10)?;
        if !(1..=50).contains(&kernels) {
            return Err(format!("kernels must be in 1..=50, got {kernels}"));
        }
        let tile: usize = parse_num(req, "tile", 512)?;
        let halo: usize = parse_num(req, "halo", 64)?;
        let seam = match req.query_param("seam").unwrap_or("crop") {
            "crop" => SeamPolicy::Crop,
            other => match other.strip_prefix("blend:").and_then(|b| b.parse::<usize>().ok()) {
                Some(band) => SeamPolicy::Blend { band },
                None => return Err(format!("bad seam={other:?} (crop or blend:K)")),
            },
        };
        let schedule = req.query_param("schedule").unwrap_or("fast").to_string();
        if !matches!(schedule.as_str(), "fast" | "exact" | "via") {
            return Err(format!("unknown schedule {schedule:?} (fast|exact|via)"));
        }
        let iters = match req.query_param("iters") {
            None => None,
            Some(raw) => {
                let n: usize = raw.parse().map_err(|_| format!("bad iters={raw:?}"))?;
                if !(1..=10_000).contains(&n) {
                    return Err(format!("iters must be in 1..=10000, got {n}"));
                }
                Some(n)
            }
        };
        let max_eff_nm: f64 = parse_num(req, "max_eff_nm", 8.0)?;
        let threads = parse_num(req, "threads", 1usize)?.clamp(1, policy.max_threads_per_job.max(1));
        let timeout_s: f64 = parse_num(req, "timeout_s", policy.default_timeout_s)?;
        let retries: u32 = parse_num(req, "retries", policy.default_retries)?.min(10);
        let evaluate = match req.query_param("eval").unwrap_or("1") {
            "1" | "true" => true,
            "0" | "false" => false,
            other => return Err(format!("bad eval={other:?} (0 or 1)")),
        };

        Ok(JobParams {
            source,
            name,
            grid,
            clip_nm,
            kernels,
            tile,
            halo,
            seam,
            schedule,
            iters,
            max_eff_nm,
            threads,
            timeout_s,
            retries,
            evaluate,
        })
    }

    /// Materializes the batch-engine inputs. Mirrors `ilt batch` exactly:
    /// same optics template, same `IltConfig`, same schedule lookup.
    ///
    /// # Errors
    ///
    /// Currently none beyond construction; kept fallible for future
    /// validation that needs the rasterized target.
    pub fn plan(&self) -> Result<(BatchCase, BatchConfig), String> {
        let (target, nm_per_px) = match &self.source {
            JobSource::Case(id) => {
                let layout = if *id <= 10 { iccad2013_case(*id) } else { extended_case(*id) };
                (layout.rasterize(self.grid), layout.nm_per_px(self.grid))
            }
            JobSource::Via(seed) => {
                let layout = via_pattern(*seed);
                (layout.rasterize(self.grid), layout.nm_per_px(self.grid))
            }
            JobSource::Inline(img) => {
                let n = img.shape().0;
                (img.clone(), self.clip_nm / n as f64)
            }
        };
        let case = BatchCase { name: self.name.clone(), target, nm_per_px };
        let mut schedule: Vec<Stage> = match self.schedule.as_str() {
            "exact" => schedules::our_exact(),
            "via" => schedules::via_recipe(),
            _ => schedules::our_fast(),
        };
        if let Some(n) = self.iters {
            for stage in &mut schedule {
                stage.iterations = n;
            }
        }
        let config = BatchConfig {
            threads: self.threads,
            tile: self.tile,
            halo: self.halo,
            seam: self.seam,
            optics: OpticsConfig { num_kernels: self.kernels, ..OpticsConfig::default() },
            ilt: IltConfig { early_exit_window: Some(15), ..IltConfig::default() },
            schedule,
            max_eff_nm: self.max_eff_nm,
            timeout: (self.timeout_s > 0.0)
                .then(|| std::time::Duration::from_secs_f64(self.timeout_s)),
            max_retries: self.retries,
            evaluate_stitched: self.evaluate,
            inject: Vec::new(),
        };
        Ok((case, config))
    }
}

/// Lifecycle of a job inside the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; every tile done.
    Done,
    /// Finished with an error or failed tiles.
    Failed,
}

impl JobState {
    fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// The retained product of a finished job.
#[derive(Clone, Debug)]
pub struct JobDone {
    /// Stitched binary mask at the target grid.
    pub mask: Field2D,
    /// FNV-1a hash of the mask bits.
    pub mask_hash: u64,
    /// Per-tile journal records.
    pub records: Vec<JobRecord>,
    /// Tiles the job decomposed into.
    pub tiles: usize,
    /// Tiles that exhausted retries.
    pub failed_tiles: usize,
    /// Full-size evaluation of the stitched mask, when requested.
    pub eval: Option<EvalReport>,
    /// End-to-end wall-time of the job, ms.
    pub wall_ms: f64,
}

struct JobEntry {
    id: usize,
    name: String,
    state: JobState,
    error: Option<String>,
    /// Pending work, taken by the worker that starts the job.
    work: Option<(BatchCase, BatchConfig)>,
    result: Option<JobDone>,
}

struct Inner {
    jobs: Vec<JobEntry>,
    queue: VecDeque<usize>,
    accepting: bool,
    running: usize,
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; retry later.
    Full {
        /// Configured capacity, echoed into the error body.
        capacity: usize,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

/// Result of asking for a finished job's mask.
pub enum MaskFetch {
    /// The mask, serialized as an 8-bit binary PGM.
    Ready(Vec<u8>),
    /// The job exists but has not produced a mask yet.
    NotReady(JobState),
    /// No job with that id.
    NoSuchJob,
}

/// The shared job table plus its bounded admission queue.
pub struct JobStore {
    inner: Mutex<Inner>,
    wakeup: Condvar,
    queue_cap: usize,
}

impl JobStore {
    /// Creates an empty store admitting at most `queue_cap` waiting jobs.
    pub fn new(queue_cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                queue: VecDeque::new(),
                accepting: true,
                running: 0,
            }),
            wakeup: Condvar::new(),
            queue_cap: queue_cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("job store lock poisoned")
    }

    /// Admits a job, or refuses it with the reason the handler turns into
    /// a 503.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Draining`] after shutdown started.
    pub fn submit(
        &self,
        name: String,
        case: BatchCase,
        config: BatchConfig,
    ) -> Result<usize, SubmitError> {
        let mut inner = self.lock();
        if !inner.accepting {
            return Err(SubmitError::Draining);
        }
        if inner.queue.len() >= self.queue_cap {
            return Err(SubmitError::Full { capacity: self.queue_cap });
        }
        let id = inner.jobs.len();
        inner.jobs.push(JobEntry {
            id,
            name,
            state: JobState::Queued,
            error: None,
            work: Some((case, config)),
            result: None,
        });
        inner.queue.push_back(id);
        drop(inner);
        self.wakeup.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available and claims it, or returns `None`
    /// when the store is draining and the queue is empty (worker exit
    /// signal). In-flight and already-queued jobs are always drained.
    pub fn take_next(&self) -> Option<(usize, BatchCase, BatchConfig)> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.queue.pop_front() {
                inner.running += 1;
                let entry = &mut inner.jobs[id];
                entry.state = JobState::Running;
                let (case, config) = entry.work.take().expect("queued job retains its work");
                return Some((id, case, config));
            }
            if !inner.accepting {
                return None;
            }
            inner = self.wakeup.wait(inner).expect("job store lock poisoned");
        }
    }

    /// Records a claimed job's terminal state.
    pub fn finish(&self, id: usize, outcome: Result<JobDone, String>) {
        let mut inner = self.lock();
        inner.running -= 1;
        let entry = &mut inner.jobs[id];
        match outcome {
            Ok(done) => {
                entry.state =
                    if done.failed_tiles == 0 { JobState::Done } else { JobState::Failed };
                if done.failed_tiles > 0 {
                    entry.error =
                        Some(format!("{} of {} tile(s) failed", done.failed_tiles, done.tiles));
                }
                entry.result = Some(done);
            }
            Err(e) => {
                entry.state = JobState::Failed;
                entry.error = Some(e);
            }
        }
        drop(inner);
        // finish() may have emptied the pipeline a drain is waiting on.
        self.wakeup.notify_all();
    }

    /// Stops admissions and wakes every worker so the queue drains.
    pub fn close(&self) {
        self.lock().accepting = false;
        self.wakeup.notify_all();
    }

    /// Fails every still-queued job (only reachable when the server runs
    /// with zero workers, e.g. in admission tests).
    pub fn abandon_queued(&self) {
        let mut inner = self.lock();
        while let Some(id) = inner.queue.pop_front() {
            let entry = &mut inner.jobs[id];
            entry.state = JobState::Failed;
            entry.error = Some("dropped at shutdown before a worker picked it up".into());
            entry.work = None;
        }
    }

    /// Jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.lock().running
    }

    /// Total jobs ever admitted.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// True when no job was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON summary array for `GET /v1/jobs`.
    pub fn render_list(&self) -> String {
        let inner = self.lock();
        let items: Vec<String> = inner.jobs.iter().map(render_summary).collect();
        format!("{{\"jobs\":[{}],\"queue_depth\":{}}}", items.join(","), inner.queue.len())
    }

    /// JSON detail object for `GET /v1/jobs/{id}`; `None` for unknown ids.
    /// With `mask_base64` the finished mask is inlined as a base64 PGM.
    pub fn render_detail(&self, id: usize, mask_base64: bool) -> Option<String> {
        let inner = self.lock();
        let entry = inner.jobs.get(id)?;
        let mut s = render_summary(entry);
        s.pop(); // strip the closing brace to extend the object
        if let Some(done) = &entry.result {
            let records: Vec<String> = done.records.iter().map(|r| r.to_json()).collect();
            s.push_str(&format!(
                ",\"mask_hash\":\"{:016x}\",\"wall_ms\":{},\"records\":[{}]",
                done.mask_hash,
                json_f64(done.wall_ms),
                records.join(",")
            ));
            if let Some(eval) = &done.eval {
                s.push_str(&format!(
                    ",\"eval\":{{\"l2_nm2\":{},\"pvband_nm2\":{},\"epe\":{},\"shots\":{}}}",
                    json_f64(eval.l2_nm2),
                    json_f64(eval.pvband_nm2),
                    eval.epe_violations(),
                    eval.shots
                ));
            }
            if mask_base64 {
                let pgm = ilt_field::pgm_bytes(&done.mask, 0.0, 1.0);
                s.push_str(&format!(
                    ",\"mask_pgm_base64\":\"{}\"",
                    crate::http::base64_encode(&pgm)
                ));
            }
        }
        s.push('}');
        Some(s)
    }

    /// The finished mask as PGM bytes, for `GET /v1/jobs/{id}/mask`.
    pub fn mask_pgm(&self, id: usize) -> MaskFetch {
        let inner = self.lock();
        match inner.jobs.get(id) {
            None => MaskFetch::NoSuchJob,
            Some(entry) => match &entry.result {
                Some(done) => MaskFetch::Ready(ilt_field::pgm_bytes(&done.mask, 0.0, 1.0)),
                None => MaskFetch::NotReady(entry.state.clone()),
            },
        }
    }
}

fn render_summary(entry: &JobEntry) -> String {
    let mut s = format!(
        "{{\"id\":{},\"name\":\"{}\",\"state\":\"{}\"",
        entry.id,
        json_escape(&entry.name),
        entry.state.as_str()
    );
    if let Some(done) = &entry.result {
        s.push_str(&format!(",\"tiles\":{},\"failed_tiles\":{}", done.tiles, done.failed_tiles));
    }
    if let Some(error) = &entry.error {
        s.push_str(&format!(",\"error\":\"{}\"", json_escape(error)));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_case(name: &str) -> (BatchCase, BatchConfig) {
        let target = Field2D::from_fn(64, 64, |r, c| {
            if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
        });
        (
            BatchCase { name: name.into(), target, nm_per_px: 8.0 },
            BatchConfig::default(),
        )
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let store = JobStore::new(2);
        let (c, cfg) = tiny_case("a");
        assert_eq!(store.submit("a".into(), c.clone(), cfg.clone()), Ok(0));
        assert_eq!(store.submit("b".into(), c.clone(), cfg.clone()), Ok(1));
        assert_eq!(
            store.submit("c".into(), c.clone(), cfg.clone()),
            Err(SubmitError::Full { capacity: 2 })
        );
        // Claiming one frees a slot.
        let (id, ..) = store.take_next().unwrap();
        assert_eq!(id, 0);
        assert_eq!(store.submit("c".into(), c, cfg), Ok(2));
        assert_eq!(store.queue_depth(), 2);
        assert_eq!(store.running(), 1);
    }

    #[test]
    fn draining_refuses_submissions_but_serves_queue() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c.clone(), cfg.clone()).unwrap();
        store.close();
        assert_eq!(store.submit("b".into(), c, cfg), Err(SubmitError::Draining));
        // The queued job is still handed out, then the drain signal.
        assert!(store.take_next().is_some());
        store.finish(0, Err("x".into()));
        assert!(store.take_next().is_none());
    }

    #[test]
    fn finish_transitions_states_and_renders() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("m1 \"quoted\"");
        store.submit("m1 \"quoted\"".into(), c, cfg).unwrap();
        let (id, case, _) = store.take_next().unwrap();
        let mask = case.target.threshold(0.5);
        let done = JobDone {
            mask_hash: ilt_runtime::field_hash(&mask),
            mask,
            records: Vec::new(),
            tiles: 1,
            failed_tiles: 0,
            eval: None,
            wall_ms: 12.0,
        };
        store.finish(id, Ok(done));
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"done\""), "{detail}");
        assert!(detail.contains("\\\"quoted\\\""), "escaping shared with the journal");
        assert!(store.render_detail(99, false).is_none());
        match store.mask_pgm(0) {
            MaskFetch::Ready(bytes) => assert!(bytes.starts_with(b"P5\n64 64\n255\n")),
            _ => panic!("mask must be ready"),
        }
        let list = store.render_list();
        assert!(list.starts_with("{\"jobs\":[{"), "{list}");
    }

    #[test]
    fn failed_tiles_mark_the_job_failed() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c, cfg).unwrap();
        let (id, case, _) = store.take_next().unwrap();
        let mask = case.target.threshold(0.5);
        store.finish(
            id,
            Ok(JobDone {
                mask_hash: ilt_runtime::field_hash(&mask),
                mask,
                records: Vec::new(),
                tiles: 9,
                failed_tiles: 2,
                eval: None,
                wall_ms: 1.0,
            }),
        );
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"failed\""));
        assert!(detail.contains("2 of 9 tile(s) failed"));
        // The degraded mask is still fetchable.
        assert!(matches!(store.mask_pgm(0), MaskFetch::Ready(_)));
    }

    #[test]
    fn abandon_queued_fails_leftovers() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c, cfg).unwrap();
        store.close();
        store.abandon_queued();
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"failed\""));
        assert!(detail.contains("dropped at shutdown"));
        assert!(store.take_next().is_none());
    }

    fn request_with_query(query: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/v1/jobs".into(),
            query: query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap_or((p, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn params_defaults_mirror_the_batch_cli() {
        let req = request_with_query("case=case1");
        let p = JobParams::from_request(&req, &ExecPolicy::default()).unwrap();
        assert_eq!(p.grid, 512);
        assert_eq!(p.kernels, 10);
        assert_eq!(p.tile, 512);
        assert_eq!(p.halo, 64);
        assert_eq!(p.schedule, "fast");
        assert_eq!(p.retries, 1);
        assert!(p.evaluate);
        let (case, config) = p.plan().unwrap();
        assert_eq!(case.name, "case1");
        assert_eq!(case.target.shape(), (512, 512));
        assert_eq!(config.ilt.early_exit_window, Some(15));
        assert!(config.timeout.is_none());
    }

    #[test]
    fn params_overrides_and_validation() {
        let policy = ExecPolicy { max_threads_per_job: 2, ..ExecPolicy::default() };
        let req = request_with_query("via=7&grid=64&kernels=3&tile=32&halo=8&iters=2&threads=16&eval=0");
        let p = JobParams::from_request(&req, &policy).unwrap();
        assert_eq!(p.threads, 2, "clamped by policy");
        assert!(!p.evaluate);
        let (_, config) = p.plan().unwrap();
        assert!(config.schedule.iter().all(|s| s.iterations == 2));

        for bad in [
            "",                       // no source
            "case=case1&via=2",       // two sources
            "case=case99",            // out of range
            "case=case1&grid=100",    // not a power of two
            "case=case1&seam=zigzag", // unknown seam
            "case=case1&schedule=mystery",
            "case=case1&iters=0",
            "case=case1&eval=maybe",
        ] {
            let req = request_with_query(bad);
            assert!(
                JobParams::from_request(&req, &ExecPolicy::default()).is_err(),
                "query {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn inline_pgm_body_is_a_source() {
        let img = Field2D::from_fn(64, 64, |r, _| if r < 32 { 1.0 } else { 0.0 });
        let mut req = request_with_query("clip_nm=512");
        req.body = ilt_field::pgm_bytes(&img, 0.0, 1.0);
        let p = JobParams::from_request(&req, &ExecPolicy::default()).unwrap();
        assert_eq!(p.name, "inline");
        let (case, _) = p.plan().unwrap();
        assert_eq!(case.target.shape(), (64, 64));
        assert!((case.nm_per_px - 8.0).abs() < 1e-12);

        // Garbage body is a 400-class error, not a panic.
        let mut bad = request_with_query("");
        bad.body = b"not a pgm".to_vec();
        assert!(JobParams::from_request(&bad, &ExecPolicy::default()).is_err());
    }
}
