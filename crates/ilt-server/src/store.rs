//! Job admission, bookkeeping, and the bounded work queue.
//!
//! The store is the single synchronization point between HTTP handler
//! threads (submit, poll, list) and the job workers (take, finish). Its
//! admission queue is *bounded*: a submission beyond capacity is refused at
//! the door — the handler turns that into `503 Service Unavailable` with a
//! `Retry-After` hint — so a flood of requests costs the flooder latency
//! instead of costing the server memory. Completed masks (the only large
//! retained objects) are bounded too: [`JobStore::sweep`] evicts masks past
//! their TTL or beyond the residency cap, after which the mask endpoint
//! re-hydrates from the state directory when it can (hash-verified) and
//! answers `410 Gone` only when the durable copy is truly unusable.
//!
//! Admission is multi-tenant: every submission carries an [`Admission`]
//! (client id + [`PriorityClass`]), the queue is per-class FIFOs drained by
//! smooth weighted round-robin ([`ilt_runtime::ClassQueues`], weights
//! 4/2/1 — high never starves, low always eventually runs), and per-client
//! queued/in-flight quotas refuse a flooding client with
//! [`SubmitError::Quota`] (a 429 upstream) while other clients proceed.
//!
//! With a state directory configured, the store doubles as a write-ahead
//! log: every admission and every terminal outcome is appended to
//! `state.jsonl` (masks written atomically beside it), and
//! [`JobStore::recover`] rebuilds the job table on restart — finished jobs
//! come back with their masks (hash-verified), interrupted ones are
//! re-planned and re-queued.
//!
//! Two lifecycle extensions keep a long-lived server bounded:
//!
//! - **Cancellation** ([`JobStore::cancel`]): a queued job is pulled out of
//!   the queue and turns terminal immediately; a running job has its
//!   cooperative [`CancelToken`] set and stops at the next tile boundary
//!   (the worker then records it via [`JobStore::finish_cancelled`]). Both
//!   paths append a `cancel` record so a restart does not resurrect the job.
//! - **Compaction** ([`JobStore::maybe_compact`]): once `state.jsonl` grows
//!   past a configured byte threshold, the live job table is snapshot to
//!   `state.snapshot.jsonl` (written atomically) and the log is truncated,
//!   so restart replay stays proportional to *live* jobs — cancelled jobs
//!   and evicted masks are dropped from the snapshot and answer 404 after
//!   the next restart. A crash between snapshot and truncate is safe:
//!   recovery replays the snapshot first, then the log, idempotently.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ilt_field::{pgm_bytes, Field2D};
use ilt_metrics::EvalReport;
use ilt_runtime::{
    field_hash, json_escape, json_f64, json_field_str, json_field_u64, load_mask,
    mask_file_name, planned_jobs, write_atomic, BatchCase, BatchConfig, CancelToken, ClassQueues,
    JobRecord, PriorityClass, Progress,
};

use ilt_cluster::params::{ExecPolicy, JobParams, JobSource};

/// Lifecycle of a job inside the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; every tile done.
    Done,
    /// Finished with an error or failed tiles.
    Failed,
    /// Cancelled before completion; terminal, never produces a mask.
    Cancelled,
}

impl JobState {
    fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// What `DELETE /v1/jobs/{id}` accomplished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: it is terminal now, no work ever ran.
    Cancelled,
    /// The job is running: its cancel token is set and it will stop at the
    /// next tile boundary (the handler answers `202 Accepted`).
    Cancelling,
    /// The job already reached a terminal state; nothing to cancel.
    AlreadyFinished(JobState),
    /// No job with that id.
    NoSuchJob,
}

/// The retained product of a finished job.
#[derive(Clone, Debug)]
pub struct JobDone {
    /// Stitched binary mask at the target grid; `None` after eviction (the
    /// hash and journal remain).
    pub mask: Option<Field2D>,
    /// FNV-1a hash of the mask bits.
    pub mask_hash: u64,
    /// Per-tile journal records (empty for jobs restored from the state
    /// log, which persists only the summary).
    pub records: Vec<JobRecord>,
    /// Tiles the job decomposed into.
    pub tiles: usize,
    /// Tiles that exhausted retries.
    pub failed_tiles: usize,
    /// Tiles rescued by the degraded low-res fallback.
    pub degraded_tiles: usize,
    /// Full-size evaluation of the stitched mask, when requested.
    pub eval: Option<EvalReport>,
    /// End-to-end wall-time of the job, ms.
    pub wall_ms: f64,
}

/// Who submitted a job and at what priority — the multi-tenant carriers of
/// every admission (`X-Ilt-Client` / `X-Ilt-Priority` over HTTP).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Client identity; quotas and the rejection metric are keyed by it.
    /// Validated upstream to `[A-Za-z0-9._-]{1,64}` because it travels into
    /// metric labels and state-log JSON unescaped.
    pub client: String,
    /// Scheduling class of the job inside the admission queue.
    pub class: PriorityClass,
}

impl Default for Admission {
    fn default() -> Self {
        Admission { client: "anonymous".into(), class: PriorityClass::Normal }
    }
}

/// Live per-client admission counters backing the quota checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientUsage {
    /// Jobs waiting in the class queues.
    pub queued: usize,
    /// Jobs claimed by a worker and not yet terminal.
    pub active: usize,
}

struct JobEntry {
    id: usize,
    name: String,
    /// Submitting client; owns this job's share of the quotas.
    client: String,
    /// Scheduling class the job was admitted under.
    class: PriorityClass,
    state: JobState,
    error: Option<String>,
    /// Pending work, taken by the worker that starts the job.
    work: Option<(BatchCase, BatchConfig)>,
    result: Option<JobDone>,
    /// When the terminal state was recorded; the TTL clock for eviction.
    finished_at: Option<Instant>,
    /// Cooperative cancel token shared with the job's `BatchConfig`.
    cancel: CancelToken,
    /// Tiles completed so far, shared with the job's pool workers.
    progress: Progress,
    /// Tiles the job decomposes into (for the progress denominator).
    tiles_planned: usize,
    /// Persistence query of the submission, retained so compaction can
    /// regenerate the submit line; `None` for non-persisted submissions.
    query: Option<String>,
    /// Side file holding an inline target's raster, when there is one.
    target_file: Option<String>,
}

struct Inner {
    /// Job table keyed by id. A map, not a vector: compaction drops
    /// cancelled ids from persistence, so after a restart the id space has
    /// holes (dropped ids answer 404).
    jobs: BTreeMap<usize, JobEntry>,
    next_id: usize,
    /// Per-class FIFOs drained by smooth weighted round-robin — the pool
    /// feed where priority takes effect.
    queue: ClassQueues<usize>,
    accepting: bool,
    running: usize,
    evicted: usize,
    /// Per-client queued/active counts; entries are dropped the moment both
    /// hit zero, so a drained store reconciles to an empty map.
    usage: BTreeMap<String, ClientUsage>,
}

impl Inner {
    fn usage_add_queued(&mut self, client: &str) {
        self.usage.entry(client.to_string()).or_default().queued += 1;
    }

    /// Moves one of `client`'s jobs from queued to active (worker claim).
    fn usage_claim(&mut self, client: &str) {
        let u = self.usage.get_mut(client).expect("claimed client has usage");
        assert!(u.queued > 0, "claim with zero queued for {client:?}");
        u.queued -= 1;
        u.active += 1;
    }

    fn usage_drop_queued(&mut self, client: &str) {
        let u = self.usage.get_mut(client).expect("dequeued client has usage");
        assert!(u.queued > 0, "queued underflow for {client:?}");
        u.queued -= 1;
        if *u == ClientUsage::default() {
            self.usage.remove(client);
        }
    }

    fn usage_drop_active(&mut self, client: &str) {
        let u = self.usage.get_mut(client).expect("finished client has usage");
        assert!(u.active > 0, "active underflow for {client:?}");
        u.active -= 1;
        if *u == ClientUsage::default() {
            self.usage.remove(client);
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; retry later.
    Full {
        /// Configured capacity, echoed into the error body.
        capacity: usize,
    },
    /// The server is draining and accepts no new work.
    Draining,
    /// The submitting client is over one of its per-client quotas; the
    /// handler turns this into `429 Too Many Requests` + `Retry-After`.
    Quota {
        /// The client that breached its quota.
        client: String,
        /// Which quota tripped: `"queued"` or `"inflight"`.
        scope: &'static str,
        /// The configured limit, echoed into the error body.
        limit: usize,
    },
}

/// Result of asking for a finished job's mask.
pub enum MaskFetch {
    /// The mask, serialized as an 8-bit binary PGM.
    Ready(Vec<u8>),
    /// The mask, reloaded (hash-verified) from the state directory after a
    /// TTL/residency eviction; byte-identical to [`MaskFetch::Ready`].
    Rehydrated(Vec<u8>),
    /// The job exists but has not produced a mask yet.
    NotReady(JobState),
    /// The job finished but its mask was evicted and is not recoverable:
    /// no state directory, the file is gone (compaction GC), or its bits
    /// no longer hash to what the log recorded.
    Gone,
    /// No job with that id.
    NoSuchJob,
}

/// The compaction snapshot beside `state.jsonl`; always written atomically.
pub const SNAPSHOT_FILE: &str = "state.snapshot.jsonl";

/// Append-only persistence of the job table: one `state.jsonl` line per
/// admission, cancellation, and terminal outcome, masks and inline targets
/// as atomically-written PGM files beside it. Once the log grows past
/// `compact_bytes` (0 disables), [`JobStore::maybe_compact`] folds the live
/// table into [`SNAPSHOT_FILE`] and truncates the log.
pub struct StateLog {
    dir: PathBuf,
    file: Mutex<File>,
    /// Bytes currently in `state.jsonl`; drives the compaction trigger.
    bytes: AtomicU64,
    compact_bytes: u64,
    /// Terminal transitions mid-persist (line appended, job table not yet
    /// updated). Compaction refuses to truncate while any are in flight —
    /// it would snapshot the job as unfinished *and* discard its outcome
    /// line, losing the result across a restart.
    persisting: AtomicU64,
}

impl StateLog {
    /// Opens (creating if needed) the state log in `dir`, appending to any
    /// existing log so recovery and continuation share one file. Compaction
    /// is disabled; see [`StateLog::open_with_compaction`].
    ///
    /// # Errors
    ///
    /// Propagates directory/file creation failures.
    pub fn open(dir: &Path) -> std::io::Result<StateLog> {
        Self::open_with_compaction(dir, 0)
    }

    /// [`StateLog::open`] with a compaction threshold: once `state.jsonl`
    /// exceeds `compact_bytes` bytes, the next terminal transition folds the
    /// log into a snapshot. `0` disables compaction.
    ///
    /// # Errors
    ///
    /// Propagates directory/file creation failures.
    pub fn open_with_compaction(dir: &Path, compact_bytes: u64) -> std::io::Result<StateLog> {
        std::fs::create_dir_all(dir)?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("state.jsonl"))?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(StateLog {
            dir: dir.to_path_buf(),
            file: Mutex::new(file),
            bytes: AtomicU64::new(bytes),
            compact_bytes,
            persisting: AtomicU64::new(0),
        })
    }

    /// The directory holding `state.jsonl` and its PGM side files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn append(&self, line: &str) {
        let mut file = self.file.lock().expect("state log lock poisoned");
        // Persistence failures must never fail the job; a lost line only
        // means the job is re-run (or forgotten) after a restart.
        let _ = file.write_all(line.as_bytes());
        let _ = file.write_all(b"\n");
        let _ = file.sync_data();
        self.bytes.fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
    }

    fn wants_compaction(&self) -> bool {
        self.compact_bytes > 0 && self.bytes.load(Ordering::Relaxed) >= self.compact_bytes
    }

    fn begin_persist(&self) {
        self.persisting.fetch_add(1, Ordering::SeqCst);
    }

    fn end_persist(&self) {
        self.persisting.fetch_sub(1, Ordering::SeqCst);
    }

    /// Atomically installs `snapshot` as [`SNAPSHOT_FILE`] and truncates
    /// `state.jsonl`. The file lock is held across both steps so no append
    /// can land between them; a crash in between leaves snapshot *plus* the
    /// full log, which recovery replays idempotently. Refuses (harmlessly —
    /// the next terminal transition retries) while another thread is
    /// between appending an outcome line and updating the job table.
    fn replace_with_snapshot(&self, snapshot: &[u8]) -> std::io::Result<()> {
        let file = self.file.lock().expect("state log lock poisoned");
        if self.persisting.load(Ordering::SeqCst) > 0 {
            return Err(std::io::Error::other("terminal transition mid-persist"));
        }
        write_atomic(&self.dir, SNAPSHOT_FILE, snapshot)?;
        file.set_len(0)?;
        file.sync_data()?;
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn log_submit(&self, id: usize, params: &JobParams, admission: &Admission) {
        let mut line = format!(
            "{{\"kind\":\"submit\",\"id\":{id},\"query\":\"{}\"{}",
            json_escape(&params.to_query()),
            admission_fields(admission)
        );
        if let JobSource::Inline(img) = &params.source {
            let name = format!("job-{id}-target.pgm");
            // The target must be durable before the line that references it.
            if write_atomic(&self.dir, &name, &pgm_bytes(img, 0.0, 1.0)).is_ok() {
                line.push_str(&format!(",\"target\":\"{name}\""));
            } else {
                return; // without the raster the submission can't be replayed
            }
        }
        line.push('}');
        self.append(&line);
    }

    fn log_finish(&self, id: usize, outcome: &Result<JobDone, String>) {
        let line = match outcome {
            Ok(done) => {
                let mut mask_file = None;
                if let Some(mask) = &done.mask {
                    let name = mask_file_name(id);
                    // Mask first, then the line claiming it exists.
                    if write_atomic(&self.dir, &name, &pgm_bytes(mask, 0.0, 1.0)).is_ok() {
                        mask_file = Some(name);
                    }
                }
                finish_line_ok(id, done, mask_file.as_deref())
            }
            Err(e) => finish_line_err(id, e),
        };
        self.append(&line);
    }

    fn log_cancel(&self, id: usize) {
        self.append(&format!("{{\"kind\":\"cancel\",\"id\":{id}}}"));
    }
}

/// The `client`/`class` tail of a submit record (state log and compaction
/// snapshot write the identical shape). The client id was validated at
/// admission to a JSON-safe alphabet; `json_escape` is belt and braces.
fn admission_fields(admission: &Admission) -> String {
    format!(
        ",\"client\":\"{}\",\"class\":\"{}\"",
        json_escape(&admission.client),
        admission.class.as_str()
    )
}

/// The `finish` record of a successful job; `mask_file` references a PGM
/// already durable in the state directory.
fn finish_line_ok(id: usize, done: &JobDone, mask_file: Option<&str>) -> String {
    let mut line = format!("{{\"kind\":\"finish\",\"id\":{id},\"ok\":true");
    if let Some(name) = mask_file {
        line.push_str(&format!(
            ",\"mask\":\"{name}\",\"mask_hash\":\"{:016x}\"",
            done.mask_hash
        ));
    }
    line.push_str(&format!(
        ",\"tiles\":{},\"failed_tiles\":{},\"degraded_tiles\":{},\"wall_ms\":{}}}",
        done.tiles,
        done.failed_tiles,
        done.degraded_tiles,
        json_f64(done.wall_ms)
    ));
    line
}

fn finish_line_err(id: usize, error: &str) -> String {
    format!(
        "{{\"kind\":\"finish\",\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
        json_escape(error)
    )
}

/// What [`JobStore::recover`] reconstructed from a state directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Finished jobs restored with a hash-verified mask (or a recorded
    /// failure).
    pub restored: usize,
    /// Interrupted jobs re-planned and re-queued.
    pub requeued: usize,
}

/// The shared job table plus its bounded admission queue.
pub struct JobStore {
    inner: Mutex<Inner>,
    wakeup: Condvar,
    queue_cap: usize,
    /// Per-client cap on non-terminal jobs (queued + active); 0 = unlimited.
    quota_inflight: usize,
    /// Per-client cap on queued jobs; 0 = unlimited.
    quota_queued: usize,
    state: Option<StateLog>,
}

impl JobStore {
    /// Creates an empty store admitting at most `queue_cap` waiting jobs.
    pub fn new(queue_cap: usize) -> Self {
        Self::with_state(queue_cap, None)
    }

    /// Creates an empty store that persists admissions and outcomes to
    /// `state`.
    pub fn with_state(queue_cap: usize, state: Option<StateLog>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                next_id: 0,
                queue: ClassQueues::new(),
                accepting: true,
                running: 0,
                evicted: 0,
                usage: BTreeMap::new(),
            }),
            wakeup: Condvar::new(),
            queue_cap: queue_cap.max(1),
            quota_inflight: 0,
            quota_queued: 0,
            state,
        }
    }

    /// Sets the per-client quotas (0 = unlimited). Takes `&mut self`
    /// because quotas are fixed before the store is shared — the server
    /// applies its `--quota-*` flags between recovery and serving.
    pub fn set_quotas(&mut self, max_inflight: usize, max_queued: usize) {
        self.quota_inflight = max_inflight;
        self.quota_queued = max_queued;
    }

    /// Rebuilds a store from `state`'s snapshot + log: jobs with a recorded
    /// outcome come back finished (masks loaded and hash-verified), jobs
    /// with a recorded cancellation come back terminal-cancelled, and jobs
    /// that were queued or running when the process died are re-planned
    /// from their persisted parameters and re-queued (bypassing the
    /// admission cap — they were already admitted once). The compaction
    /// snapshot, when present, is replayed before `state.jsonl`; duplicate
    /// submit records are first-win and outcomes are folded in on top, so a
    /// crash between snapshot installation and log truncation replays to
    /// the same table. A torn trailing *log* line (crash mid-append) is
    /// tolerated; that job is simply re-run.
    ///
    /// # Errors
    ///
    /// Returns a message for an unreadable or mid-file-corrupt log or
    /// snapshot.
    pub fn recover(
        queue_cap: usize,
        state: StateLog,
        policy: &ExecPolicy,
    ) -> Result<(JobStore, RecoveryStats), String> {
        let snapshot = match std::fs::read_to_string(state.dir.join(SNAPSHOT_FILE)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("read state snapshot: {e}")),
        };
        let raw = std::fs::read_to_string(state.dir.join("state.jsonl"))
            .map_err(|e| format!("read state log: {e}"))?;

        // Replay: submissions in record order (first submit per id wins, so
        // the snapshot takes precedence over a stale untruncated log),
        // outcomes and cancellations folded in by id.
        let mut submits: Vec<(usize, String, Option<String>, Admission)> = Vec::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut finishes: BTreeMap<usize, String> = BTreeMap::new();
        let mut cancels: BTreeSet<usize> = BTreeSet::new();
        let mut next_id_floor = 0usize;
        // The snapshot is written atomically, so damage there is real
        // corruption; only the appended log can have a torn tail.
        for (tolerate_tail, text, what) in
            [(false, snapshot.as_str(), "state snapshot"), (true, raw.as_str(), "state log")]
        {
            let lines: Vec<&str> = text.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                let parsed = (|| -> Option<()> {
                    match json_field_str(line, "kind").ok()?.as_str() {
                        "submit" => {
                            let id = json_field_u64(line, "id").ok()? as usize;
                            let query = json_field_str(line, "query").ok()?;
                            let target = json_field_str(line, "target").ok();
                            // Pre-multi-tenant logs have no client/class;
                            // they replay under the defaults.
                            let admission = Admission {
                                client: json_field_str(line, "client")
                                    .unwrap_or_else(|_| "anonymous".into()),
                                class: json_field_str(line, "class")
                                    .ok()
                                    .and_then(|c| PriorityClass::parse(&c))
                                    .unwrap_or(PriorityClass::Normal),
                            };
                            if seen.insert(id) {
                                submits.push((id, query, target, admission));
                            }
                        }
                        "finish" => {
                            let id = json_field_u64(line, "id").ok()? as usize;
                            finishes.insert(id, line.to_string());
                        }
                        "cancel" => {
                            cancels.insert(json_field_u64(line, "id").ok()? as usize);
                        }
                        "compact" => {
                            let next = json_field_u64(line, "next_id").ok()? as usize;
                            next_id_floor = next_id_floor.max(next);
                        }
                        _ => {} // future record kinds are not an error
                    }
                    Some(())
                })();
                if parsed.is_none() {
                    if tolerate_tail && i + 1 == lines.len() {
                        break; // torn trailing line: the crash we exist to survive
                    }
                    return Err(format!("{what} line {} is corrupt: {line}", i + 1));
                }
            }
        }

        let store = JobStore::with_state(queue_cap, Some(state));
        let mut stats = RecoveryStats::default();
        {
            let dir = store.state.as_ref().expect("state is set").dir.clone();
            let mut inner = store.lock();
            for (id, query, target, admission) in submits {
                let body = match &target {
                    Some(t) => std::fs::read(dir.join(t)).unwrap_or_default(),
                    None => Vec::new(),
                };
                let planned = JobParams::from_saved(&query, body, policy)
                    .and_then(|p| p.plan().map(|cc| (p, cc)));
                let mut entry = match planned {
                    Err(why) => {
                        stats.restored += 1;
                        terminal_entry(
                            id,
                            format!("job{id}"),
                            JobState::Failed,
                            Some(format!("unreplayable after restart: {why}")),
                        )
                    }
                    Ok((params, (case, mut config))) => {
                        let finished = finishes
                            .get(&id)
                            .and_then(|fin| restore_finished(&dir, id, params.name.clone(), fin));
                        match finished {
                            Some(entry) => {
                                stats.restored += 1;
                                entry
                            }
                            // A cancellation with no durable outcome stays
                            // cancelled; the job never re-runs.
                            None if cancels.contains(&id) => {
                                stats.restored += 1;
                                terminal_entry(id, params.name, JobState::Cancelled, None)
                            }
                            // No durable outcome (or an unverifiable mask):
                            // the job runs again with its original id, in
                            // its original class, on its client's quota.
                            None => {
                                stats.requeued += 1;
                                inner.queue.push(admission.class, id);
                                inner.usage_add_queued(&admission.client);
                                let cancel = CancelToken::new();
                                let progress = Progress::new();
                                config.cancel = cancel.clone();
                                config.progress = progress.clone();
                                let tiles_planned = planned_jobs(&case, &config).unwrap_or(1);
                                JobEntry {
                                    id,
                                    name: params.name,
                                    client: admission.client.clone(),
                                    class: admission.class,
                                    state: JobState::Queued,
                                    error: None,
                                    work: Some((case, config)),
                                    result: None,
                                    finished_at: None,
                                    cancel,
                                    progress,
                                    tiles_planned,
                                    query: None,
                                    target_file: None,
                                }
                            }
                        }
                    }
                };
                entry.query = Some(query);
                entry.target_file = target;
                entry.client = admission.client;
                entry.class = admission.class;
                inner.jobs.insert(id, entry);
            }
            inner.next_id =
                next_id_floor.max(inner.jobs.keys().next_back().map_or(0, |&id| id + 1));
        }
        Ok((store, stats))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("job store lock poisoned")
    }

    /// Admits a job under the default admission (anonymous client, normal
    /// priority), or refuses it with the reason the handler turns into a
    /// 503/429.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Draining`] after shutdown started,
    /// [`SubmitError::Quota`] when the client is over a per-client quota.
    pub fn submit(
        &self,
        name: String,
        case: BatchCase,
        config: BatchConfig,
    ) -> Result<usize, SubmitError> {
        self.submit_inner(name, case, config, None, Admission::default())
    }

    /// [`JobStore::submit`] with an explicit client identity and priority
    /// class.
    ///
    /// # Errors
    ///
    /// Same as [`JobStore::submit`].
    pub fn submit_as(
        &self,
        name: String,
        case: BatchCase,
        config: BatchConfig,
        admission: Admission,
    ) -> Result<usize, SubmitError> {
        self.submit_inner(name, case, config, None, admission)
    }

    /// [`JobStore::submit`], additionally persisting the submission to the
    /// state log (when one is configured) so it survives a restart.
    ///
    /// # Errors
    ///
    /// Same as [`JobStore::submit`].
    pub fn submit_persisted(
        &self,
        params: &JobParams,
        case: BatchCase,
        config: BatchConfig,
    ) -> Result<usize, SubmitError> {
        self.submit_inner(params.name.clone(), case, config, Some(params), Admission::default())
    }

    /// [`JobStore::submit_persisted`] with an explicit admission — the HTTP
    /// submission path.
    ///
    /// # Errors
    ///
    /// Same as [`JobStore::submit`].
    pub fn submit_persisted_as(
        &self,
        params: &JobParams,
        case: BatchCase,
        config: BatchConfig,
        admission: Admission,
    ) -> Result<usize, SubmitError> {
        self.submit_inner(params.name.clone(), case, config, Some(params), admission)
    }

    fn submit_inner(
        &self,
        name: String,
        case: BatchCase,
        mut config: BatchConfig,
        params: Option<&JobParams>,
        admission: Admission,
    ) -> Result<usize, SubmitError> {
        let mut inner = self.lock();
        if !inner.accepting {
            return Err(SubmitError::Draining);
        }
        // Per-client verdicts come before the global one: a flooding client
        // is told it is over *its* quota (429) rather than blamed on shared
        // capacity (503).
        let usage = inner.usage.get(&admission.client).copied().unwrap_or_default();
        if self.quota_queued > 0 && usage.queued >= self.quota_queued {
            return Err(SubmitError::Quota {
                client: admission.client,
                scope: "queued",
                limit: self.quota_queued,
            });
        }
        if self.quota_inflight > 0 && usage.queued + usage.active >= self.quota_inflight {
            return Err(SubmitError::Quota {
                client: admission.client,
                scope: "inflight",
                limit: self.quota_inflight,
            });
        }
        if inner.queue.len() >= self.queue_cap {
            return Err(SubmitError::Full { capacity: self.queue_cap });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        // Logged under the lock so state-log order matches id order.
        if let (Some(state), Some(params)) = (&self.state, params) {
            state.log_submit(id, params, &admission);
        }
        // Every job gets its own cancel token and progress counter, wired
        // into the batch config the worker will execute.
        let cancel = CancelToken::new();
        let progress = Progress::new();
        config.cancel = cancel.clone();
        config.progress = progress.clone();
        let tiles_planned = planned_jobs(&case, &config).unwrap_or(1);
        let target_file = params.and_then(|p| match &p.source {
            JobSource::Inline(_) => Some(format!("job-{id}-target.pgm")),
            _ => None,
        });
        inner.jobs.insert(
            id,
            JobEntry {
                id,
                name,
                client: admission.client.clone(),
                class: admission.class,
                state: JobState::Queued,
                error: None,
                work: Some((case, config)),
                result: None,
                finished_at: None,
                cancel,
                progress,
                tiles_planned,
                query: params.map(|p| p.to_query()),
                target_file,
            },
        );
        inner.queue.push(admission.class, id);
        inner.usage_add_queued(&admission.client);
        drop(inner);
        self.wakeup.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available and claims it, or returns `None`
    /// when the store is draining and the queue is empty (worker exit
    /// signal). In-flight and already-queued jobs are always drained.
    /// The fourth element is the job's persisted parameter query (present
    /// for every HTTP submission) — the cluster coordinator re-dispatches
    /// from it so workers re-plan through the identical validation path.
    pub fn take_next(&self) -> Option<(usize, BatchCase, BatchConfig, Option<String>)> {
        let mut inner = self.lock();
        loop {
            if let Some((_, id)) = inner.queue.pop() {
                inner.running += 1;
                let entry = inner.jobs.get_mut(&id).expect("queued id exists");
                entry.state = JobState::Running;
                let (case, config) = entry.work.take().expect("queued job retains its work");
                let query = entry.query.clone();
                let client = entry.client.clone();
                inner.usage_claim(&client);
                return Some((id, case, config, query));
            }
            if !inner.accepting {
                return None;
            }
            inner = self.wakeup.wait(inner).expect("job store lock poisoned");
        }
    }

    /// Records a claimed job's terminal state (persisting it first, mask
    /// before log line, when a state log is configured).
    pub fn finish(&self, id: usize, outcome: Result<JobDone, String>) {
        // Persist outside the lock: mask writes are large and fsynced. The
        // persist guard keeps a concurrent compaction from truncating this
        // outcome line away before the table below reflects it.
        if let Some(state) = &self.state {
            state.begin_persist();
            state.log_finish(id, &outcome);
        }
        let mut inner = self.lock();
        inner.running -= 1;
        let entry = inner.jobs.get_mut(&id).expect("finished id exists");
        let client = entry.client.clone();
        match outcome {
            Ok(done) => {
                entry.state =
                    if done.failed_tiles == 0 { JobState::Done } else { JobState::Failed };
                if done.failed_tiles > 0 {
                    entry.error =
                        Some(format!("{} of {} tile(s) failed", done.failed_tiles, done.tiles));
                }
                entry.result = Some(done);
            }
            Err(e) => {
                entry.state = JobState::Failed;
                entry.error = Some(e);
            }
        }
        entry.finished_at = Some(Instant::now());
        inner.usage_drop_active(&client);
        drop(inner);
        if let Some(state) = &self.state {
            state.end_persist();
        }
        // finish() may have emptied the pipeline a drain is waiting on.
        self.wakeup.notify_all();
        self.maybe_compact();
    }

    /// Records a claimed job as cancelled: the worker observed the cancel
    /// token and stopped at a tile boundary without a usable result. The
    /// `cancel` record was already persisted by [`JobStore::cancel`].
    pub fn finish_cancelled(&self, id: usize) {
        let mut inner = self.lock();
        inner.running -= 1;
        let entry = inner.jobs.get_mut(&id).expect("cancelled id exists");
        entry.state = JobState::Cancelled;
        entry.finished_at = Some(Instant::now());
        let client = entry.client.clone();
        inner.usage_drop_active(&client);
        drop(inner);
        self.wakeup.notify_all();
        self.maybe_compact();
    }

    /// Cancels a job: queued jobs leave the queue and turn terminal
    /// immediately; running jobs have their cooperative token set and stop
    /// at the next tile boundary. Terminal jobs and unknown ids report what
    /// they are. The cancellation is persisted (for queued *and* running
    /// jobs) so a restart does not resurrect the job.
    pub fn cancel(&self, id: usize) -> CancelOutcome {
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get_mut(&id) else {
            return CancelOutcome::NoSuchJob;
        };
        let outcome = match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.work = None;
                entry.finished_at = Some(Instant::now());
                let client = entry.client.clone();
                inner.queue.retain(|&q| q != id);
                inner.usage_drop_queued(&client);
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                entry.cancel.cancel();
                CancelOutcome::Cancelling
            }
            ref terminal => return CancelOutcome::AlreadyFinished(terminal.clone()),
        };
        // Begun under the table lock (compaction also holds it), so the
        // cancel record cannot be lost to a concurrent truncation.
        if let Some(state) = &self.state {
            state.begin_persist();
        }
        drop(inner);
        if let Some(state) = &self.state {
            state.log_cancel(id);
            state.end_persist();
        }
        if outcome == CancelOutcome::Cancelled {
            self.maybe_compact();
        }
        outcome
    }

    /// Folds the state log into [`SNAPSHOT_FILE`] and truncates it, once it
    /// has outgrown the configured threshold. Cancelled jobs and jobs whose
    /// mask was evicted are dropped from the snapshot — after the next
    /// restart those ids answer 404. Returns whether a compaction ran.
    pub fn maybe_compact(&self) -> bool {
        let Some(state) = &self.state else { return false };
        if !state.wants_compaction() {
            return false;
        }
        // Built and installed under the table lock: the snapshot is a
        // consistent point-in-time view, and appends (which also take the
        // store lock on every path that logs) cannot interleave.
        let inner = self.lock();
        let mut snapshot = format!("{{\"kind\":\"compact\",\"next_id\":{}}}\n", inner.next_id);
        // Side files referenced by snapshot entries; everything else in the
        // state directory is orphaned by this compaction and swept after.
        let mut keep: BTreeSet<String> = BTreeSet::new();
        for entry in inner.jobs.values() {
            let Some(query) = &entry.query else { continue }; // never persisted
            if entry.state == JobState::Cancelled {
                continue; // dropped: compaction is how cancelled ids age out
            }
            if entry.result.as_ref().is_some_and(|d| d.mask.is_none()) {
                continue; // mask evicted: not worth resurrecting either
            }
            snapshot.push_str(&format!(
                "{{\"kind\":\"submit\",\"id\":{},\"query\":\"{}\"{}",
                entry.id,
                json_escape(query),
                admission_fields(&Admission {
                    client: entry.client.clone(),
                    class: entry.class
                })
            ));
            if let Some(target) = &entry.target_file {
                snapshot.push_str(&format!(",\"target\":\"{target}\""));
                keep.insert(target.clone());
            }
            if entry.result.as_ref().is_some_and(|d| d.mask.is_some()) {
                keep.insert(mask_file_name(entry.id));
            }
            snapshot.push_str("}\n");
            if entry.state.is_terminal() {
                let line = match (&entry.result, &entry.error) {
                    (Some(done), _) => {
                        // The mask PGM was made durable by log_finish before
                        // its original finish line was appended.
                        let mask_file =
                            done.mask.as_ref().map(|_| mask_file_name(entry.id));
                        finish_line_ok(entry.id, done, mask_file.as_deref())
                    }
                    (None, Some(error)) => finish_line_err(entry.id, error),
                    (None, None) => finish_line_err(entry.id, "unknown failure"),
                };
                snapshot.push_str(&line);
                snapshot.push('\n');
            }
        }
        let ok = state.replace_with_snapshot(snapshot.as_bytes()).is_ok();
        if ok {
            // Still under the table lock (no submit/finish can be writing
            // new side files), delete the PGM files the snapshot no longer
            // references: masks and targets of compacted-away jobs.
            gc_state_files(&state.dir, &keep);
        }
        drop(inner);
        ok
    }

    /// Evicts resident masks that finished more than `ttl` ago, then the
    /// oldest-finished masks beyond `max_resident`. Evicted jobs keep all
    /// metadata; their mask endpoint answers `410 Gone`. Returns the number
    /// evicted by this sweep.
    pub fn sweep(&self, ttl: Option<Duration>, max_resident: usize) -> usize {
        let mut inner = self.lock();
        let mut evicted = 0usize;
        let mut resident: Vec<(Instant, usize)> = Vec::new();
        for entry in inner.jobs.values_mut() {
            let Some(done) = &mut entry.result else { continue };
            if done.mask.is_none() {
                continue;
            }
            let finished = entry.finished_at.unwrap_or_else(Instant::now);
            if ttl.is_some_and(|ttl| finished.elapsed() > ttl) {
                done.mask = None;
                evicted += 1;
            } else {
                resident.push((finished, entry.id));
            }
        }
        if resident.len() > max_resident {
            resident.sort_by_key(|&(at, _)| at);
            let excess = resident.len() - max_resident;
            for &(_, id) in resident.iter().take(excess) {
                if let Some(done) = inner.jobs.get_mut(&id).and_then(|e| e.result.as_mut()) {
                    done.mask = None;
                    evicted += 1;
                }
            }
        }
        inner.evicted += evicted;
        evicted
    }

    /// Masks evicted since start.
    pub fn evictions(&self) -> usize {
        self.lock().evicted
    }

    /// Stops admissions and wakes every worker so the queue drains.
    pub fn close(&self) {
        self.lock().accepting = false;
        self.wakeup.notify_all();
    }

    /// Fails every still-queued job (only reachable when the server runs
    /// with zero workers, e.g. in admission tests).
    pub fn abandon_queued(&self) {
        let mut inner = self.lock();
        while let Some((_, id)) = inner.queue.pop() {
            let entry = inner.jobs.get_mut(&id).expect("queued id exists");
            entry.state = JobState::Failed;
            entry.error = Some("dropped at shutdown before a worker picked it up".into());
            entry.work = None;
            entry.finished_at = Some(Instant::now());
            let client = entry.client.clone();
            inner.usage_drop_queued(&client);
        }
    }

    /// Jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Queue depth per priority class, indexed like [`PriorityClass::ALL`].
    pub fn queue_depth_by_class(&self) -> [usize; 3] {
        self.lock().queue.len_by_class()
    }

    /// Point-in-time per-client `(client, usage)` pairs. A fully drained
    /// store returns an empty vector — the reconciliation invariant the
    /// fairness fuzz test pins.
    pub fn quota_usage(&self) -> Vec<(String, ClientUsage)> {
        self.lock().usage.iter().map(|(c, u)| (c.clone(), *u)).collect()
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.lock().running
    }

    /// Total jobs ever admitted.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// True when no job was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON summary array for `GET /v1/jobs`.
    pub fn render_list(&self) -> String {
        let inner = self.lock();
        let items: Vec<String> = inner.jobs.values().map(render_summary).collect();
        format!("{{\"jobs\":[{}],\"queue_depth\":{}}}", items.join(","), inner.queue.len())
    }

    /// JSON detail object for `GET /v1/jobs/{id}`; `None` for unknown ids.
    /// With `mask_base64` the finished mask is inlined as a base64 PGM.
    pub fn render_detail(&self, id: usize, mask_base64: bool) -> Option<String> {
        let inner = self.lock();
        let entry = inner.jobs.get(&id)?;
        let mut s = render_summary(entry);
        s.pop(); // strip the closing brace to extend the object
        if let Some(done) = &entry.result {
            let records: Vec<String> = done.records.iter().map(|r| r.to_json()).collect();
            s.push_str(&format!(
                ",\"mask_hash\":\"{:016x}\",\"wall_ms\":{},\"records\":[{}]",
                done.mask_hash,
                json_f64(done.wall_ms),
                records.join(",")
            ));
            if let Some(eval) = &done.eval {
                s.push_str(&format!(
                    ",\"eval\":{{\"l2_nm2\":{},\"pvband_nm2\":{},\"epe\":{},\"shots\":{}}}",
                    json_f64(eval.l2_nm2),
                    json_f64(eval.pvband_nm2),
                    eval.epe_violations(),
                    eval.shots
                ));
            }
            if mask_base64 {
                if let Some(mask) = &done.mask {
                    let pgm = ilt_field::pgm_bytes(mask, 0.0, 1.0);
                    s.push_str(&format!(
                        ",\"mask_pgm_base64\":\"{}\"",
                        crate::http::base64_encode(&pgm)
                    ));
                }
            }
        }
        s.push('}');
        Some(s)
    }

    /// The finished mask as PGM bytes, for `GET /v1/jobs/{id}/mask`.
    ///
    /// An evicted mask is *re-hydrated* when a state directory is
    /// configured: the durable `job-{id}.pgm` is reloaded, hash-verified
    /// against the recorded `mask_hash`, re-installed as resident, and
    /// served as [`MaskFetch::Rehydrated`] — byte-identical to the
    /// pre-eviction bytes. Only a missing file (compaction GC'd it) or a
    /// hash mismatch (on-disk corruption) answers [`MaskFetch::Gone`]; the
    /// store never serves a mask the log can't vouch for.
    pub fn mask_pgm(&self, id: usize) -> MaskFetch {
        let (dir, expected_hash) = {
            let inner = self.lock();
            match inner.jobs.get(&id) {
                None => return MaskFetch::NoSuchJob,
                Some(entry) => match &entry.result {
                    Some(done) => match &done.mask {
                        Some(mask) => {
                            return MaskFetch::Ready(ilt_field::pgm_bytes(mask, 0.0, 1.0))
                        }
                        None => {
                            let Some(state) = &self.state else { return MaskFetch::Gone };
                            (state.dir.clone(), done.mask_hash)
                        }
                    },
                    None => return MaskFetch::NotReady(entry.state.clone()),
                },
            }
        };
        // Disk I/O and hashing run outside the lock; scrapes and submits
        // are never blocked on a re-hydration.
        let Ok(loaded) = load_mask(&dir, &mask_file_name(id)) else {
            return MaskFetch::Gone;
        };
        if field_hash(&loaded) != expected_hash {
            return MaskFetch::Gone;
        }
        let bytes = pgm_bytes(&loaded, 0.0, 1.0);
        let mut inner = self.lock();
        if let Some(done) = inner.jobs.get_mut(&id).and_then(|e| e.result.as_mut()) {
            // A concurrent fetch may have re-installed it already; either
            // way the resident mask carries the verified hash.
            if done.mask.is_none() {
                done.mask = Some(loaded);
            }
        }
        MaskFetch::Rehydrated(bytes)
    }
}

/// Deletes `job-*.pgm` side files (masks and inline targets) that the
/// just-installed compaction snapshot no longer references. Runs under the
/// job-table lock, so no concurrent submission or finish can be writing a
/// new side file while the directory is swept; `wal.jsonl`, `state.jsonl`,
/// the snapshot itself, and any foreign files are never touched.
fn gc_state_files(dir: &Path, keep: &BTreeSet<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("job-") && name.ends_with(".pgm") && !keep.contains(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// A terminal [`JobEntry`] with no retained work or result.
fn terminal_entry(id: usize, name: String, state: JobState, error: Option<String>) -> JobEntry {
    JobEntry {
        id,
        name,
        client: "anonymous".into(),
        class: PriorityClass::Normal,
        state,
        error,
        work: None,
        result: None,
        finished_at: Some(Instant::now()),
        cancel: CancelToken::new(),
        progress: Progress::new(),
        tiles_planned: 0,
        query: None,
        target_file: None,
    }
}

/// Reconstructs a terminal [`JobEntry`] from a persisted finish line.
/// Returns `None` when the outcome claims a mask that is missing or fails
/// hash verification — the caller re-queues the job instead of serving a
/// mask the log can't vouch for.
fn restore_finished(dir: &Path, id: usize, name: String, line: &str) -> Option<JobEntry> {
    let ok = ilt_runtime::json_field_raw(line, "ok")? == "true";
    if !ok {
        let error = json_field_str(line, "error").unwrap_or_default();
        return Some(terminal_entry(id, name, JobState::Failed, Some(error)));
    }
    let mask = match json_field_str(line, "mask") {
        Err(_) => return None, // success without a durable mask: re-run
        Ok(file) => {
            let loaded = load_mask(dir, &file).ok()?;
            let recorded = json_field_str(line, "mask_hash")
                .ok()
                .and_then(|h| u64::from_str_radix(&h, 16).ok())?;
            if field_hash(&loaded) != recorded {
                return None;
            }
            loaded
        }
    };
    let tiles = json_field_u64(line, "tiles").ok()? as usize;
    let failed_tiles = json_field_u64(line, "failed_tiles").ok()? as usize;
    let degraded_tiles = json_field_u64(line, "degraded_tiles").unwrap_or(0) as usize;
    let wall_ms = ilt_runtime::json_field_f64(line, "wall_ms").unwrap_or(0.0);
    let error = (failed_tiles > 0)
        .then(|| format!("{failed_tiles} of {tiles} tile(s) failed"));
    let state = if failed_tiles == 0 { JobState::Done } else { JobState::Failed };
    let mut entry = terminal_entry(id, name, state, error);
    entry.result = Some(JobDone {
        mask_hash: field_hash(&mask),
        mask: Some(mask),
        records: Vec::new(),
        tiles,
        failed_tiles,
        degraded_tiles,
        eval: None,
        wall_ms,
    });
    Some(entry)
}

fn render_summary(entry: &JobEntry) -> String {
    let mut s = format!(
        "{{\"id\":{},\"name\":\"{}\",\"client\":\"{}\",\"class\":\"{}\",\"state\":\"{}\"",
        entry.id,
        json_escape(&entry.name),
        json_escape(&entry.client),
        entry.class.as_str(),
        entry.state.as_str()
    );
    if let Some(done) = &entry.result {
        s.push_str(&format!(
            ",\"tiles\":{},\"failed_tiles\":{},\"degraded_tiles\":{},\"mask_resident\":{}",
            done.tiles,
            done.failed_tiles,
            done.degraded_tiles,
            done.mask.is_some()
        ));
    } else if !entry.state.is_terminal() {
        // Streaming progress for queued/running jobs: tiles completed so
        // far out of the planned decomposition.
        s.push_str(&format!(
            ",\"tiles_done\":{},\"tiles_planned\":{}",
            entry.progress.done(),
            entry.tiles_planned
        ));
    }
    if let Some(error) = &entry.error {
        s.push_str(&format!(",\"error\":\"{}\"", json_escape(error)));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    fn tiny_case(name: &str) -> (BatchCase, BatchConfig) {
        let target = Field2D::from_fn(64, 64, |r, c| {
            if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
        });
        (
            BatchCase { name: name.into(), target, nm_per_px: 8.0 },
            BatchConfig::default(),
        )
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let store = JobStore::new(2);
        let (c, cfg) = tiny_case("a");
        assert_eq!(store.submit("a".into(), c.clone(), cfg.clone()), Ok(0));
        assert_eq!(store.submit("b".into(), c.clone(), cfg.clone()), Ok(1));
        assert_eq!(
            store.submit("c".into(), c.clone(), cfg.clone()),
            Err(SubmitError::Full { capacity: 2 })
        );
        // Claiming one frees a slot.
        let (id, ..) = store.take_next().unwrap();
        assert_eq!(id, 0);
        assert_eq!(store.submit("c".into(), c, cfg), Ok(2));
        assert_eq!(store.queue_depth(), 2);
        assert_eq!(store.running(), 1);
    }

    #[test]
    fn draining_refuses_submissions_but_serves_queue() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c.clone(), cfg.clone()).unwrap();
        store.close();
        assert_eq!(store.submit("b".into(), c, cfg), Err(SubmitError::Draining));
        // The queued job is still handed out, then the drain signal.
        assert!(store.take_next().is_some());
        store.finish(0, Err("x".into()));
        assert!(store.take_next().is_none());
    }

    #[test]
    fn finish_transitions_states_and_renders() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("m1 \"quoted\"");
        store.submit("m1 \"quoted\"".into(), c, cfg).unwrap();
        let (id, case, _, _) = store.take_next().unwrap();
        let mask = case.target.threshold(0.5);
        let done = JobDone {
            mask_hash: ilt_runtime::field_hash(&mask),
            mask: Some(mask),
            records: Vec::new(),
            tiles: 1,
            failed_tiles: 0,
            degraded_tiles: 0,
            eval: None,
            wall_ms: 12.0,
        };
        store.finish(id, Ok(done));
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"done\""), "{detail}");
        assert!(detail.contains("\\\"quoted\\\""), "escaping shared with the journal");
        assert!(store.render_detail(99, false).is_none());
        match store.mask_pgm(0) {
            MaskFetch::Ready(bytes) => assert!(bytes.starts_with(b"P5\n64 64\n255\n")),
            _ => panic!("mask must be ready"),
        }
        let list = store.render_list();
        assert!(list.starts_with("{\"jobs\":[{"), "{list}");
    }

    #[test]
    fn failed_tiles_mark_the_job_failed() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c, cfg).unwrap();
        let (id, case, _, _) = store.take_next().unwrap();
        let mask = case.target.threshold(0.5);
        store.finish(
            id,
            Ok(JobDone {
                mask_hash: ilt_runtime::field_hash(&mask),
                mask: Some(mask),
                records: Vec::new(),
                tiles: 9,
                failed_tiles: 2,
                degraded_tiles: 0,
                eval: None,
                wall_ms: 1.0,
            }),
        );
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"failed\""));
        assert!(detail.contains("2 of 9 tile(s) failed"));
        // The degraded mask is still fetchable.
        assert!(matches!(store.mask_pgm(0), MaskFetch::Ready(_)));
    }

    #[test]
    fn abandon_queued_fails_leftovers() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c, cfg).unwrap();
        store.close();
        store.abandon_queued();
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"failed\""));
        assert!(detail.contains("dropped at shutdown"));
        assert!(store.take_next().is_none());
    }

    fn request_with_query(query: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/v1/jobs".into(),
            query: query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap_or((p, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn params_defaults_mirror_the_batch_cli() {
        let req = request_with_query("case=case1");
        let p = JobParams::from_request(&req, &ExecPolicy::default()).unwrap();
        assert_eq!(p.grid, 512);
        assert_eq!(p.kernels, 10);
        assert_eq!(p.tile, 512);
        assert_eq!(p.halo, 64);
        assert_eq!(p.schedule, "fast");
        assert_eq!(p.retries, 1);
        assert!(p.evaluate);
        let (case, config) = p.plan().unwrap();
        assert_eq!(case.name, "case1");
        assert_eq!(case.target.shape(), (512, 512));
        assert_eq!(config.ilt.early_exit_window, Some(15));
        assert!(config.timeout.is_none());
    }

    #[test]
    fn params_overrides_and_validation() {
        let policy = ExecPolicy { max_threads_per_job: 2, ..ExecPolicy::default() };
        let req = request_with_query("via=7&grid=64&kernels=3&tile=32&halo=8&iters=2&threads=16&eval=0");
        let p = JobParams::from_request(&req, &policy).unwrap();
        assert_eq!(p.threads, 2, "clamped by policy");
        assert!(!p.evaluate);
        let (_, config) = p.plan().unwrap();
        assert!(config.schedule.iter().all(|s| s.iterations == 2));

        for bad in [
            "",                       // no source
            "case=case1&via=2",       // two sources
            "case=case99",            // out of range
            "case=case1&grid=100",    // not a power of two
            "case=case1&seam=zigzag", // unknown seam
            "case=case1&schedule=mystery",
            "case=case1&iters=0",
            "case=case1&eval=maybe",
        ] {
            let req = request_with_query(bad);
            assert!(
                JobParams::from_request(&req, &ExecPolicy::default()).is_err(),
                "query {bad:?} must be rejected"
            );
        }
    }

    fn done_for(case: &BatchCase, tiles: usize) -> JobDone {
        let mask = case.target.threshold(0.5);
        JobDone {
            mask_hash: field_hash(&mask),
            mask: Some(mask),
            records: Vec::new(),
            tiles,
            failed_tiles: 0,
            degraded_tiles: 0,
            eval: None,
            wall_ms: 5.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ilt-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ttl_sweep_evicts_masks_but_keeps_metadata() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c.clone(), cfg).unwrap();
        let (id, case, _, _) = store.take_next().unwrap();
        store.finish(id, Ok(done_for(&case, 1)));

        // A generous TTL keeps the mask; a zero TTL evicts it.
        assert_eq!(store.sweep(Some(Duration::from_secs(3600)), usize::MAX), 0);
        assert!(matches!(store.mask_pgm(0), MaskFetch::Ready(_)));
        assert_eq!(store.sweep(Some(Duration::ZERO), usize::MAX), 1);
        assert_eq!(store.evictions(), 1);
        assert!(matches!(store.mask_pgm(0), MaskFetch::Gone));
        // Metadata and hash survive; only the pixels are gone.
        let detail = store.render_detail(0, true).unwrap();
        assert!(detail.contains("\"mask_resident\":false"), "{detail}");
        assert!(detail.contains("\"mask_hash\""), "{detail}");
        assert!(!detail.contains("mask_pgm_base64"), "{detail}");
        // Re-sweeping does not double-count.
        assert_eq!(store.sweep(Some(Duration::ZERO), usize::MAX), 0);
    }

    #[test]
    fn residency_cap_evicts_oldest_finished_first() {
        let store = JobStore::new(8);
        let (c, cfg) = tiny_case("a");
        for i in 0..3 {
            store.submit(format!("j{i}"), c.clone(), cfg.clone()).unwrap();
        }
        for _ in 0..3 {
            let (id, case, _, _) = store.take_next().unwrap();
            store.finish(id, Ok(done_for(&case, 1)));
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(store.sweep(None, 1), 2, "two oldest evicted");
        assert!(matches!(store.mask_pgm(0), MaskFetch::Gone));
        assert!(matches!(store.mask_pgm(1), MaskFetch::Gone));
        assert!(matches!(store.mask_pgm(2), MaskFetch::Ready(_)));
    }

    #[test]
    fn params_round_trip_through_the_query_codec() {
        let req = request_with_query(
            "via=9&grid=64&kernels=3&tile=32&halo=8&seam=blend:4&schedule=via&iters=7&eval=0",
        );
        let p = JobParams::from_request(&req, &ExecPolicy::default()).unwrap();
        let q = JobParams::from_saved(&p.to_query(), Vec::new(), &ExecPolicy::default()).unwrap();
        assert_eq!(format!("{:?}", p), format!("{:?}", q));
        // Names with query metacharacters survive the round trip.
        let mut named = p.clone();
        named.name = "we&ird=na me%".into();
        let r =
            JobParams::from_saved(&named.to_query(), Vec::new(), &ExecPolicy::default()).unwrap();
        assert_eq!(r.name, "we&ird=na me%");
    }

    #[test]
    fn inject_param_is_gated_by_policy() {
        let req = request_with_query("case=case1&inject=panic@0:1");
        let err = JobParams::from_request(&req, &ExecPolicy::default()).unwrap_err();
        assert!(err.contains("disabled"), "{err}");

        let open = ExecPolicy { allow_inject: true, ..ExecPolicy::default() };
        let p = JobParams::from_request(&req, &open).unwrap();
        assert!(!p.faults.is_empty());
        let (_, config) = p.plan().unwrap();
        assert!(!config.faults.is_empty(), "the plan carries the fault plan");
        // The fault plan round-trips through the persistence query even
        // under a locked-down policy (recovery replays it).
        let r = JobParams::from_saved(&p.to_query(), Vec::new(), &ExecPolicy::default()).unwrap();
        assert_eq!(format!("{}", r.faults), format!("{}", p.faults));

        // A malformed spec is a 400-class error even when allowed.
        let bad = request_with_query("case=case1&inject=explode@zero");
        assert!(JobParams::from_request(&bad, &open).is_err());
    }

    #[test]
    fn fault_grammar_round_trips_through_the_http_query_form() {
        // Every fault kind must survive the real wire parser (percent
        // decoding and all) → JobParams → to_query → from_saved, the path
        // a recovered job's fault plan takes across a restart. `--inject`
        // shares the same grammar, pinned in ilt-runtime's fault tests.
        let open = ExecPolicy { allow_inject: true, ..ExecPolicy::default() };
        for spec in ["panic@0", "delay@1:2=250", "build@2:1", "nan@3:1-3", "ckpt@4", "crash@5"] {
            let raw = format!(
                "POST /v1/jobs?case=case1&inject={spec} HTTP/1.1\r\ncontent-length: 0\r\n\r\n"
            );
            let req = crate::http::Request::read_from(
                &mut raw.as_bytes(),
                &crate::http::Limits::default(),
            )
            .unwrap_or_else(|e| panic!("{spec}: {e:?}"));
            let p = JobParams::from_request(&req, &open).expect(spec);
            assert_eq!(p.faults.to_string(), spec, "wire parse must be lossless");
            let saved = JobParams::from_saved(&p.to_query(), Vec::new(), &ExecPolicy::default())
                .expect(spec);
            assert_eq!(saved.faults.to_string(), spec, "persistence round trip");
        }
    }

    #[test]
    fn state_log_recovers_done_and_requeues_interrupted() {
        let dir = temp_dir("recover");
        let (c, cfg) = tiny_case("a");
        {
            let store =
                JobStore::with_state(8, Some(StateLog::open(&dir).unwrap()));
            let params = JobParams::from_request(
                &request_with_query("case=case1&grid=64&kernels=3&name=done-job"),
                &ExecPolicy::default(),
            )
            .unwrap();
            store.submit_persisted(&params, c.clone(), cfg.clone()).unwrap();
            let interrupted = JobParams::from_request(
                &request_with_query("case=case2&grid=64&kernels=3&name=interrupted"),
                &ExecPolicy::default(),
            )
            .unwrap();
            store.submit_persisted(&interrupted, c.clone(), cfg.clone()).unwrap();
            // Job 0 finishes; job 1 is taken but never finished (the crash).
            let (id, case, _, _) = store.take_next().unwrap();
            store.finish(id, Ok(done_for(&case, 1)));
            let _ = store.take_next().unwrap();
        }

        let (store, stats) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(stats, RecoveryStats { restored: 1, requeued: 1 });
        // Job 0 came back finished, mask verified byte-identical.
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"done\""), "{detail}");
        assert!(detail.contains("done-job"), "{detail}");
        match store.mask_pgm(0) {
            MaskFetch::Ready(bytes) => {
                assert_eq!(bytes, pgm_bytes(&c.target.threshold(0.5), 0.0, 1.0));
            }
            _ => panic!("recovered mask must be ready"),
        }
        // Job 1 is queued again under its original id and params.
        let (id, case, _, _) = store.take_next().unwrap();
        assert_eq!(id, 1);
        assert_eq!(case.name, "interrupted");

        // A finish line whose mask file was corrupted is not trusted.
        let mask_path = dir.join(mask_file_name(0));
        let mut bytes = std::fs::read(&mask_path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&mask_path, bytes).unwrap();
        let (store, stats) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(stats, RecoveryStats { restored: 0, requeued: 2 });
        assert_eq!(store.queue_depth(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_state_line_is_tolerated() {
        let dir = temp_dir("torn");
        {
            let store = JobStore::with_state(8, Some(StateLog::open(&dir).unwrap()));
            let (c, cfg) = tiny_case("a");
            let params = JobParams::from_request(
                &request_with_query("case=case1&grid=64&kernels=3"),
                &ExecPolicy::default(),
            )
            .unwrap();
            store.submit_persisted(&params, c.clone(), cfg.clone()).unwrap();
            store.submit_persisted(&params, c, cfg).unwrap();
        }
        // Chop the last line in half: a crash mid-append.
        let path = dir.join("state.jsonl");
        let raw = std::fs::read_to_string(&path).unwrap();
        let keep = raw.len() - raw.lines().last().unwrap().len() / 2 - 1;
        std::fs::write(&path, &raw.as_bytes()[..keep]).unwrap();

        let (store, stats) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(stats, RecoveryStats { restored: 0, requeued: 1 });
        assert_eq!(store.len(), 1, "the torn submission is simply forgotten");

        // Mid-file corruption, by contrast, refuses to recover.
        std::fs::write(&path, "{\"kind\":\"submit\",\"id\":garbage\nnot json either\n").unwrap();
        let err = match JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default())
        {
            Err(e) => e,
            Ok(_) => panic!("mid-file corruption must refuse recovery"),
        };
        assert!(err.contains("corrupt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_queued_job_is_immediately_terminal() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c.clone(), cfg.clone()).unwrap();
        store.submit("b".into(), c, cfg).unwrap();
        assert_eq!(store.cancel(1), CancelOutcome::Cancelled);
        assert_eq!(store.queue_depth(), 1, "only job 0 remains queued");
        let detail = store.render_detail(1, false).unwrap();
        assert!(detail.contains("\"state\":\"cancelled\""), "{detail}");
        assert!(matches!(store.mask_pgm(1), MaskFetch::NotReady(JobState::Cancelled)));
        // Cancelling again (or a bogus id) reports what happened.
        assert_eq!(
            store.cancel(1),
            CancelOutcome::AlreadyFinished(JobState::Cancelled)
        );
        assert_eq!(store.cancel(99), CancelOutcome::NoSuchJob);
        // The untouched job still hands out normally.
        let (id, ..) = store.take_next().unwrap();
        assert_eq!(id, 0);
    }

    #[test]
    fn cancel_running_job_sets_the_token_and_lands_cancelled() {
        let store = JobStore::new(4);
        let (c, cfg) = tiny_case("a");
        store.submit("a".into(), c, cfg).unwrap();
        let (id, _case, config, _) = store.take_next().unwrap();
        assert!(!config.cancel.is_cancelled());
        assert_eq!(store.cancel(id), CancelOutcome::Cancelling);
        assert!(config.cancel.is_cancelled(), "the worker's token is the same token");
        // The worker observes the token at a tile boundary and reports in.
        store.finish_cancelled(id);
        assert_eq!(store.running(), 0);
        let detail = store.render_detail(id, false).unwrap();
        assert!(detail.contains("\"state\":\"cancelled\""), "{detail}");
        assert_eq!(
            store.cancel(id),
            CancelOutcome::AlreadyFinished(JobState::Cancelled)
        );
    }

    #[test]
    fn progress_counters_render_for_live_jobs_only() {
        let store = JobStore::new(4);
        let target = Field2D::from_fn(64, 64, |r, _| if r < 32 { 1.0 } else { 0.0 });
        let case = BatchCase { name: "p".into(), target, nm_per_px: 8.0 };
        let config = BatchConfig { tile: 32, halo: 8, ..BatchConfig::default() };
        store.submit("p".into(), case, config).unwrap();
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"tiles_done\":0"), "{detail}");
        assert!(
            detail.contains("\"tiles_planned\":16"),
            "64px field over 16px cores (tile 32 - 2*halo 8) = 4x4: {detail}"
        );
        let (id, case, config, _) = store.take_next().unwrap();
        config.progress.tick();
        config.progress.tick();
        let detail = store.render_detail(id, false).unwrap();
        assert!(detail.contains("\"tiles_done\":2"), "{detail}");
        store.finish(id, Ok(done_for(&case, 4)));
        let detail = store.render_detail(id, false).unwrap();
        assert!(!detail.contains("tiles_done"), "terminal jobs report tiles, not progress: {detail}");
        assert!(detail.contains("\"tiles\":4"), "{detail}");
    }

    #[test]
    fn cancelled_job_survives_restart_as_cancelled() {
        let dir = temp_dir("cancel-restart");
        let (c, cfg) = tiny_case("a");
        {
            let store = JobStore::with_state(8, Some(StateLog::open(&dir).unwrap()));
            let params = JobParams::from_request(
                &request_with_query("case=case1&grid=64&kernels=3&name=doomed"),
                &ExecPolicy::default(),
            )
            .unwrap();
            store.submit_persisted(&params, c.clone(), cfg.clone()).unwrap();
            store.submit_persisted(&params, c, cfg).unwrap();
            assert_eq!(store.cancel(0), CancelOutcome::Cancelled);
        }
        let (store, stats) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(stats, RecoveryStats { restored: 1, requeued: 1 });
        let detail = store.render_detail(0, false).unwrap();
        assert!(detail.contains("\"state\":\"cancelled\""), "never re-runs: {detail}");
        assert_eq!(store.queue_depth(), 1, "only the uncancelled job is requeued");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_live_jobs_truncates_log_and_drops_cancelled() {
        let dir = temp_dir("compact");
        let (c, cfg) = tiny_case("a");
        let params = |name: &str| {
            JobParams::from_request(
                &request_with_query(&format!("case=case1&grid=64&kernels=3&name={name}")),
                &ExecPolicy::default(),
            )
            .unwrap()
        };
        {
            // Threshold 1 byte: every terminal transition compacts.
            let state = StateLog::open_with_compaction(&dir, 1).unwrap();
            let store = JobStore::with_state(8, Some(state));
            store.submit_persisted(&params("keeper"), c.clone(), cfg.clone()).unwrap();
            store.submit_persisted(&params("doomed"), c.clone(), cfg.clone()).unwrap();
            store.submit_persisted(&params("pending"), c.clone(), cfg.clone()).unwrap();
            let (id, case, _, _) = store.take_next().unwrap();
            store.finish(id, Ok(done_for(&case, 1))); // compacts
            assert_eq!(store.cancel(1), CancelOutcome::Cancelled); // compacts again
        }
        let snapshot = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).unwrap();
        assert!(snapshot.starts_with("{\"kind\":\"compact\",\"next_id\":3}"), "{snapshot}");
        assert!(snapshot.contains("keeper"), "{snapshot}");
        assert!(snapshot.contains("pending"), "{snapshot}");
        assert!(!snapshot.contains("doomed"), "cancelled jobs age out: {snapshot}");
        let log = std::fs::read_to_string(dir.join("state.jsonl")).unwrap();
        assert!(log.is_empty(), "truncated after the last compaction: {log:?}");

        let (store, stats) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(stats, RecoveryStats { restored: 1, requeued: 1 });
        // The finished job is byte-identical across the compaction boundary.
        match store.mask_pgm(0) {
            MaskFetch::Ready(bytes) => {
                assert_eq!(bytes, pgm_bytes(&c.target.threshold(0.5), 0.0, 1.0));
            }
            _ => panic!("compacted mask must recover"),
        }
        // The cancelled id is gone for good; ids never recycle.
        assert!(store.render_detail(1, false).is_none());
        let (sc, scfg) = tiny_case("next");
        assert_eq!(store.submit("next".into(), sc, scfg), Ok(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_gc_deletes_orphaned_state_files() {
        let dir = temp_dir("gc");
        let img = Field2D::from_fn(64, 64, |r, _| if r < 32 { 1.0 } else { 0.0 });
        let submit = |store: &JobStore, name: &str| {
            let mut req = request_with_query(&format!("clip_nm=512&grid=64&kernels=3&name={name}"));
            req.body = pgm_bytes(&img, 0.0, 1.0);
            let p = JobParams::from_request(&req, &ExecPolicy::default()).unwrap();
            let (case, cfg) = p.plan().unwrap();
            store.submit_persisted(&p, case, cfg).unwrap()
        };
        let exists = |name: &str| dir.join(name).exists();

        // Threshold 1 byte: every terminal transition compacts + sweeps.
        let state = StateLog::open_with_compaction(&dir, 1).unwrap();
        let store = JobStore::with_state(8, Some(state));
        submit(&store, "done-a");
        submit(&store, "doomed");
        submit(&store, "done-b");
        let (id, case, _, _) = store.take_next().unwrap();
        store.finish(id, Ok(done_for(&case, 1)));
        assert_eq!(store.cancel(1), CancelOutcome::Cancelled);
        let (id, case, _, _) = store.take_next().unwrap();
        store.finish(id, Ok(done_for(&case, 1)));

        // The cancelled job aged out of the snapshot, so its inline-target
        // side file is orphaned and swept; live jobs keep all their files.
        assert!(!exists("job-1-target.pgm"), "cancelled target must be GCed");
        assert!(!exists(&mask_file_name(1)), "never produced, never present");
        for name in ["job-0-target.pgm", "job-2-target.pgm"] {
            assert!(exists(name), "{name} is still referenced");
        }
        for id in [0, 2] {
            assert!(exists(&mask_file_name(id)), "mask {id} is still referenced");
        }

        // Evicting a resident mask drops its job from the next snapshot,
        // which orphans BOTH its files.
        assert_eq!(store.sweep(None, 1), 1, "oldest finished mask evicted");
        submit(&store, "tail"); // grows the log past the threshold again
        assert!(store.maybe_compact());
        assert!(!exists(&mask_file_name(0)), "evicted mask file must be GCed");
        assert!(!exists("job-0-target.pgm"), "dropped job keeps no side files");
        assert!(exists(&mask_file_name(2)));
        assert!(exists("job-2-target.pgm"));
        assert!(exists("job-3-target.pgm"), "queued job keeps its target");
        drop(store);

        // Recovery agrees: the GCed id is gone, the kept one restores
        // byte-identically.
        let (store, _) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert!(store.render_detail(0, false).is_none(), "GCed id answers 404");
        assert!(matches!(store.mask_pgm(2), MaskFetch::Ready(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_untruncated_log_after_snapshot_replays_idempotently() {
        // A crash exactly between snapshot installation and log truncation
        // leaves the snapshot AND the full pre-compaction log. Recovery
        // must fold both into the same table a clean compaction produces.
        let dir = temp_dir("compact-crash");
        let (c, cfg) = tiny_case("a");
        let params = JobParams::from_request(
            &request_with_query("case=case1&grid=64&kernels=3&name=surviv"),
            &ExecPolicy::default(),
        )
        .unwrap();
        let pre_compaction_log;
        {
            let store = JobStore::with_state(8, Some(StateLog::open(&dir).unwrap()));
            store.submit_persisted(&params, c.clone(), cfg.clone()).unwrap();
            store.submit_persisted(&params, c.clone(), cfg.clone()).unwrap();
            let (id, case, _, _) = store.take_next().unwrap();
            store.finish(id, Ok(done_for(&case, 1)));
            pre_compaction_log = std::fs::read_to_string(dir.join("state.jsonl")).unwrap();
        }
        {
            // Compact for real...
            let state = StateLog::open_with_compaction(&dir, 1).unwrap();
            let store = JobStore::recover(8, state, &ExecPolicy::default()).unwrap().0;
            assert!(store.maybe_compact());
        }
        // ...then simulate the crash by restoring the un-truncated log.
        std::fs::write(dir.join("state.jsonl"), &pre_compaction_log).unwrap();
        let (store, stats) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(stats, RecoveryStats { restored: 1, requeued: 1 });
        assert_eq!(store.len(), 2, "no duplicates from replaying both files");
        assert!(matches!(store.mask_pgm(0), MaskFetch::Ready(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_log_truncation_fuzz_always_recovers() {
        // Seeded torn-tail fuzz (mirrors the runtime WAL fuzz): a crash can
        // only tear the trailing line, so recovery must tolerate EVERY
        // truncation point — never an error, never a phantom job.
        use ilt_layouts::Xorshift64Star;
        let dir = temp_dir("state-fuzz");
        let (c, cfg) = tiny_case("a");
        {
            let store = JobStore::with_state(8, Some(StateLog::open(&dir).unwrap()));
            for i in 0..4 {
                let params = JobParams::from_request(
                    &request_with_query(&format!("case=case1&grid=64&kernels=3&name=f{i}")),
                    &ExecPolicy::default(),
                )
                .unwrap();
                store.submit_persisted(&params, c.clone(), cfg.clone()).unwrap();
            }
            for _ in 0..2 {
                let (id, case, _, _) = store.take_next().unwrap();
                store.finish(id, Ok(done_for(&case, 1)));
            }
            store.cancel(2);
        }
        let path = dir.join("state.jsonl");
        let healthy = std::fs::read(&path).unwrap();
        let full_lines = healthy.iter().filter(|&&b| b == b'\n').count();
        let mut rng = Xorshift64Star::new(0x5eed_10c);
        for round in 0..150 {
            let cut = (rng.next_u64() as usize) % healthy.len() + 1;
            std::fs::write(&path, &healthy[..cut]).unwrap();
            let (store, _) =
                JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default())
                    .unwrap_or_else(|e| panic!("round {round}: cut {cut} must recover: {e}"));
            // Every fully-intact submit record materializes as a job; at
            // most the torn trailing line can add one more (its fields may
            // still field-parse without the closing brace).
            let submit_starts = healthy[..cut]
                .split(|&b| b == b'\n')
                .filter(|l| l.starts_with(b"{\"kind\":\"submit\""))
                .count();
            let intact_submits = healthy[..cut]
                .split(|&b| b == b'\n')
                .filter(|l| l.starts_with(b"{\"kind\":\"submit\"") && l.ends_with(b"}"))
                .count();
            assert!(
                store.len() >= intact_submits && store.len() <= submit_starts,
                "round {round}: cut {cut}: {} jobs from {intact_submits}..={submit_starts} submits",
                store.len()
            );
        }
        // The undamaged log still replays everything.
        std::fs::write(&path, &healthy).unwrap();
        let (store, _) =
            JobStore::recover(8, StateLog::open(&dir).unwrap(), &ExecPolicy::default()).unwrap();
        assert_eq!(store.len(), 4);
        assert!(full_lines >= 7, "submits + finishes + cancel all logged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_pgm_body_is_a_source() {
        let img = Field2D::from_fn(64, 64, |r, _| if r < 32 { 1.0 } else { 0.0 });
        let mut req = request_with_query("clip_nm=512");
        req.body = ilt_field::pgm_bytes(&img, 0.0, 1.0);
        let p = JobParams::from_request(&req, &ExecPolicy::default()).unwrap();
        assert_eq!(p.name, "inline");
        let (case, _) = p.plan().unwrap();
        assert_eq!(case.target.shape(), (64, 64));
        assert!((case.nm_per_px - 8.0).abs() < 1e-12);

        // Garbage body is a 400-class error, not a panic.
        let mut bad = request_with_query("");
        bad.body = b"not a pgm".to_vec();
        assert!(JobParams::from_request(&bad, &ExecPolicy::default()).is_err());
    }
}
