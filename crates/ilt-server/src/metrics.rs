//! Lock-free live counters and latency histograms, rendered as Prometheus
//! text exposition format (version 0.0.4) for `GET /metrics`.
//!
//! Everything is atomics so the hot paths (admission, job completion) never
//! contend with scrapes. Histogram buckets are cumulative (`le` semantics)
//! exactly as Prometheus expects; the per-stage latencies come from the
//! run journal's `StageTimes`, so batch CLI runs and served jobs measure
//! the same quantities with the same code.

use std::collections::BTreeMap;
use std::sync::Mutex;

use ilt_runtime::{PriorityClass, StageTimes};

// The primitive instruments moved to `ilt-cluster` (the coordinator
// observes shard health with them); re-exported here so every existing
// `ilt_server::metrics::*` import keeps working.
pub use ilt_cluster::stats::{Counter, FailureKinds, Histogram, FAILURE_KINDS, LATENCY_BUCKETS_MS};

/// A counter family labeled by client id — one Prometheus series per
/// client that has tripped it. Mutex-backed rather than atomic: it only
/// ticks on the quota-rejection path, which is cold by definition.
#[derive(Debug, Default)]
pub struct ClientCounters {
    counts: Mutex<BTreeMap<String, u64>>,
}

impl ClientCounters {
    /// Increments `client`'s series.
    pub fn inc(&self, client: &str) {
        let mut counts = self.counts.lock().expect("client counter lock poisoned");
        *counts.entry(client.to_string()).or_insert(0) += 1;
    }

    /// Current count for `client` (0 when never incremented).
    pub fn get(&self, client: &str) -> u64 {
        self.counts.lock().expect("client counter lock poisoned").get(client).copied().unwrap_or(0)
    }

    fn render(&self, out: &mut String, name: &str, help: &str) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        // Client ids were validated at admission to a label-safe alphabet.
        for (client, count) in self.counts.lock().expect("client counter lock poisoned").iter() {
            out.push_str(&format!("{name}{{client=\"{client}\"}} {count}\n"));
        }
    }
}

/// Every live metric the server exports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs admitted to the queue.
    pub accepted: Counter,
    /// Submissions turned away (queue full or draining) with 503.
    pub rejected: Counter,
    /// Jobs that finished with every tile done.
    pub completed: Counter,
    /// Jobs that finished with at least one failed tile or an engine error.
    pub failed: Counter,
    /// Jobs cancelled by `DELETE /v1/jobs/{id}` (queued or running).
    pub cancelled: Counter,
    /// Jobs reconstructed from the state log at startup (finished restores
    /// plus re-queued interruptions).
    pub recovered: Counter,
    /// Tiles rescued by the degraded low-res fallback.
    pub degraded_tiles: Counter,
    /// Result masks evicted by the TTL / residency sweep.
    pub evicted: Counter,
    /// Evicted masks served again after a hash-verified reload from the
    /// state directory.
    pub rehydrated: Counter,
    /// Submissions refused 429 for breaching a per-client quota, by client.
    pub rejected_quota: ClientCounters,
    /// Failed tile jobs, by failure classification.
    pub tile_failures: FailureKinds,
    /// Simulator-acquisition latency per job (cache hit ≈ 0).
    pub sim_ms: Histogram,
    /// Optimization latency per job.
    pub optimize_ms: Histogram,
    /// Evaluation latency per job.
    pub evaluate_ms: Histogram,
    /// End-to-end job wall-time (queue wait excluded).
    pub wall_ms: Histogram,
}

/// Point-in-time gauges sampled at scrape time (owned by the job store and
/// simulator cache, not by [`Metrics`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauges {
    /// Jobs waiting in the admission queue, per priority class, indexed
    /// like [`PriorityClass::ALL`].
    pub queue_depth: [usize; 3],
    /// Jobs currently executing on workers.
    pub running: usize,
    /// Simulators resident in the cache.
    pub cache_entries: usize,
    /// Cache hits since start.
    pub cache_hits: usize,
    /// Cache misses (builds) since start.
    pub cache_misses: usize,
    /// Cache LRU evictions since start.
    pub cache_evictions: usize,
}

impl Metrics {
    /// Records the per-stage latencies of one finished job.
    pub fn observe_stages(&self, times: &StageTimes, wall_ms: f64) {
        self.sim_ms.observe(times.sim_ms);
        self.optimize_ms.observe(times.optimize_ms);
        self.evaluate_ms.observe(times.evaluate_ms);
        self.wall_ms.observe(wall_ms);
    }

    /// Renders the Prometheus text exposition for `GET /metrics`.
    pub fn render(&self, gauges: &Gauges) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: usize| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        counter(&mut out, "ilt_jobs_accepted_total", "Jobs admitted to the queue.", self.accepted.get());
        counter(&mut out, "ilt_jobs_rejected_total", "Submissions rejected with 503.", self.rejected.get());
        counter(&mut out, "ilt_jobs_completed_total", "Jobs finished fully done.", self.completed.get());
        counter(&mut out, "ilt_jobs_failed_total", "Jobs finished failed (engine error or failed tiles).", self.failed.get());
        counter(&mut out, "ilt_jobs_cancelled_total", "Jobs cancelled via DELETE /v1/jobs/{id}.", self.cancelled.get());
        counter(&mut out, "ilt_jobs_recovered_total", "Jobs reconstructed from the state log at startup.", self.recovered.get());
        counter(&mut out, "ilt_tiles_degraded_total", "Tiles rescued by the degraded low-res fallback.", self.degraded_tiles.get());
        counter(&mut out, "ilt_masks_evicted_total", "Result masks evicted by the TTL/residency sweep.", self.evicted.get());
        counter(&mut out, "ilt_masks_rehydrated_total", "Evicted masks reloaded (hash-verified) from the state directory.", self.rehydrated.get());
        self.rejected_quota.render(
            &mut out,
            "ilt_jobs_rejected_quota_total",
            "Submissions refused 429 for breaching a per-client quota.",
        );
        self.tile_failures.render(&mut out);
        out.push_str(
            "# HELP ilt_queue_depth Jobs waiting in the admission queue, by priority class.\n# TYPE ilt_queue_depth gauge\n",
        );
        for class in PriorityClass::ALL {
            out.push_str(&format!(
                "ilt_queue_depth{{class=\"{}\"}} {}\n",
                class.as_str(),
                gauges.queue_depth[class.index()]
            ));
        }
        gauge(&mut out, "ilt_jobs_running", "Jobs currently executing.", gauges.running);
        gauge(&mut out, "ilt_cache_simulators", "Simulators resident in the cache.", gauges.cache_entries);
        counter(&mut out, "ilt_cache_hits_total", "Simulator cache hits.", gauges.cache_hits as u64);
        counter(&mut out, "ilt_cache_misses_total", "Simulator cache misses (builds).", gauges.cache_misses as u64);
        counter(&mut out, "ilt_cache_evictions_total", "Simulator cache LRU evictions.", gauges.cache_evictions as u64);
        out.push_str(
            "# HELP ilt_stage_latency_ms Per-stage job latency, milliseconds.\n# TYPE ilt_stage_latency_ms histogram\n",
        );
        self.sim_ms.render("ilt_stage_latency_ms", "sim", &mut out);
        self.optimize_ms.render("ilt_stage_latency_ms", "optimize", &mut out);
        self.evaluate_ms.render("ilt_stage_latency_ms", "evaluate", &mut out);
        self.wall_ms.render("ilt_stage_latency_ms", "wall", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(0.5); // le 1
        h.observe(3.0); // le 5
        h.observe(7.0); // le 10
        h.observe(1e9); // +Inf
        assert_eq!(h.count(), 4);
        assert!((h.sum_ms() - 1e9 - 10.5).abs() < 1e-6);
        let mut out = String::new();
        h.render("x_ms", "sim", &mut out);
        assert!(out.contains("x_ms_bucket{stage=\"sim\",le=\"1\"} 1\n"));
        assert!(out.contains("x_ms_bucket{stage=\"sim\",le=\"5\"} 2\n"));
        assert!(out.contains("x_ms_bucket{stage=\"sim\",le=\"10\"} 3\n"));
        assert!(out.contains("x_ms_bucket{stage=\"sim\",le=\"60000\"} 3\n"));
        assert!(out.contains("x_ms_bucket{stage=\"sim\",le=\"+Inf\"} 4\n"));
        assert!(out.contains("x_ms_count{stage=\"sim\"} 4\n"));
    }

    #[test]
    fn render_includes_every_family() {
        let m = Metrics::default();
        m.accepted.inc();
        m.accepted.inc();
        m.rejected.inc();
        m.observe_stages(&StageTimes { sim_ms: 2.0, optimize_ms: 700.0, evaluate_ms: 30.0 }, 750.0);
        let text = m.render(&Gauges { queue_depth: [1, 3, 0], running: 1, ..Gauges::default() });
        assert!(text.contains("ilt_jobs_accepted_total 2\n"));
        assert!(text.contains("ilt_jobs_rejected_total 1\n"));
        assert!(text.contains("ilt_queue_depth{class=\"high\"} 1\n"), "{text}");
        assert!(text.contains("ilt_queue_depth{class=\"normal\"} 3\n"));
        assert!(text.contains("ilt_queue_depth{class=\"low\"} 0\n"));
        assert!(text.contains("ilt_masks_rehydrated_total 0\n"));
        assert!(text.contains("# TYPE ilt_jobs_rejected_quota_total counter\n"));
        assert!(text.contains("ilt_jobs_running 1\n"));
        assert!(text.contains("ilt_stage_latency_ms_bucket{stage=\"optimize\",le=\"1000\"} 1\n"));
        assert!(text.contains("ilt_stage_latency_ms_count{stage=\"wall\"} 1\n"));
        // Prometheus text format: every line is either a comment or
        // `name{labels} value`.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.split_whitespace().count() == 2, "{line}");
        }
    }

    #[test]
    fn failure_kinds_render_as_one_labeled_family() {
        let m = Metrics::default();
        m.tile_failures.inc("panic");
        m.tile_failures.inc("panic");
        m.tile_failures.inc("numeric");
        m.tile_failures.inc("something-new"); // unknown kinds land in `other`
        m.cancelled.inc();
        m.degraded_tiles.inc();
        m.evicted.add(3);
        m.recovered.add(2);
        m.rehydrated.inc();
        m.rejected_quota.inc("alice");
        m.rejected_quota.inc("alice");
        m.rejected_quota.inc("bob");
        assert_eq!(m.rejected_quota.get("alice"), 2);
        assert_eq!(m.rejected_quota.get("nobody"), 0);
        let text = m.render(&Gauges::default());
        assert!(text.contains("ilt_masks_rehydrated_total 1\n"), "{text}");
        assert!(text.contains("ilt_jobs_rejected_quota_total{client=\"alice\"} 2\n"), "{text}");
        assert!(text.contains("ilt_jobs_rejected_quota_total{client=\"bob\"} 1\n"));
        assert!(text.contains("ilt_tile_failures_total{kind=\"panic\"} 2\n"), "{text}");
        assert!(text.contains("ilt_tile_failures_total{kind=\"numeric\"} 1\n"));
        assert!(text.contains("ilt_tile_failures_total{kind=\"timeout\"} 0\n"));
        assert!(text.contains("ilt_tile_failures_total{kind=\"other\"} 1\n"));
        assert!(text.contains("ilt_jobs_cancelled_total 1\n"));
        assert!(text.contains("ilt_tiles_degraded_total 1\n"));
        assert!(text.contains("ilt_masks_evicted_total 3\n"));
        assert!(text.contains("ilt_jobs_recovered_total 2\n"));
        for line in text.lines() {
            assert!(line.starts_with('#') || line.split_whitespace().count() == 2, "{line}");
        }
    }

    #[test]
    fn concurrent_observations_do_not_lose_sum() {
        let h = Histogram::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!((h.sum_ms() - 4000.0).abs() < 1e-9);
    }
}
