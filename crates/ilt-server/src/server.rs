//! The long-lived service: listener, router, job workers, graceful drain.
//!
//! One thread accepts connections and hands each to a short-lived handler
//! thread (bounded in number); `workers` dedicated threads drain the job
//! queue through [`ilt_runtime::run_batch`], so HTTP latency is never
//! coupled to optimization latency — a poll or a scrape answers in
//! microseconds while jobs grind in the background. Submission beyond the
//! bounded queue is refused with `503` + `Retry-After` (backpressure
//! instead of memory growth), and shutdown (`POST /v1/shutdown`, the
//! SIGTERM-equivalent hook) stops admissions, finishes in-flight and queued
//! jobs, flushes the journal, and only then lets [`Server::run`] return.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ilt_cluster::{ClusterConfig, Coordinator, ExecPolicy, JobParams};
use ilt_field::pgm_bytes;
use ilt_runtime::{
    assemble_batch, failure_kind, field_hash, planned_job_list, run_batch, BatchCase, BatchConfig,
    BatchOutcome, JobStatus, PriorityClass, SimulatorCache,
};

use crate::http::{ConnOptions, Limits, Request, Response};
use crate::metrics::{Gauges, Metrics};
use crate::store::{
    Admission, CancelOutcome, JobDone, JobStore, MaskFetch, RecoveryStats, StateLog, SubmitError,
};

/// Everything tunable about a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080`; port 0 picks a free port.
    pub addr: String,
    /// Job-executor threads (0 admits but never runs jobs — test only).
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_cap: usize,
    /// Maximum concurrently served connections; excess get an immediate 503.
    pub max_connections: usize,
    /// Socket read timeout per request.
    pub read_timeout: Duration,
    /// Socket write timeout per response.
    pub write_timeout: Duration,
    /// HTTP parsing limits (head/body size caps).
    pub limits: Limits,
    /// Per-request execution policy (default timeout/retries, thread cap).
    pub policy: ExecPolicy,
    /// Append every finished job's records here as JSON Lines.
    pub journal: Option<PathBuf>,
    /// LRU capacity of the shared simulator cache.
    pub cache_capacity: usize,
    /// Durable job state directory: submissions and outcomes are logged
    /// there and recovered on the next bind (crash-safe restart).
    pub state_dir: Option<PathBuf>,
    /// Evict result masks this long after their job finished; `None`
    /// retains them for the life of the process.
    pub result_ttl: Option<Duration>,
    /// Hard cap on resident result masks; the oldest-finished are evicted
    /// beyond it.
    pub max_resident_masks: usize,
    /// Maximum requests served per keep-alive connection before the server
    /// closes it (bounds how long one client can pin a handler thread).
    pub keep_alive_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Compact the state log (snapshot live jobs, truncate `state.jsonl`)
    /// once it exceeds this many bytes; 0 disables compaction.
    pub compact_state_bytes: u64,
    /// Per-client cap on non-terminal jobs (queued + running); breaches
    /// answer `429 Too Many Requests`. 0 = unlimited.
    pub quota_inflight: usize,
    /// Per-client cap on queued jobs; breaches answer `429`. 0 = unlimited.
    pub quota_queued: usize,
    /// When set, this instance is a cluster coordinator: each job's tile
    /// plan is sharded across the configured `ilt worker` replicas and the
    /// per-tile results are reassembled centrally (byte-identical stitching
    /// to a local run). `None` executes jobs in-process as before.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 16,
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            policy: ExecPolicy::default(),
            journal: None,
            cache_capacity: 16,
            state_dir: None,
            result_ttl: None,
            max_resident_masks: usize::MAX,
            keep_alive_requests: 32,
            idle_timeout: Duration::from_secs(5),
            compact_state_bytes: 0,
            quota_inflight: 0,
            quota_queued: 0,
            cluster: None,
        }
    }
}

struct Shared {
    config: ServerConfig,
    store: JobStore,
    metrics: Metrics,
    cache: SimulatorCache,
    coordinator: Option<Coordinator>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    journal: Mutex<Option<std::fs::File>>,
    addr: SocketAddr,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens the journal (truncating an old one).
    /// With a state directory configured, the job table is first recovered
    /// from its log: finished jobs come back with hash-verified masks,
    /// interrupted ones are re-queued and run before any new submission.
    ///
    /// # Errors
    ///
    /// Propagates bind and journal-creation failures, and state-log
    /// corruption beyond a torn trailing line.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let journal = match &config.journal {
            Some(path) => Some(std::fs::File::create(path)?),
            None => None,
        };
        let (mut store, recovered) = match &config.state_dir {
            None => (JobStore::new(config.queue_cap), RecoveryStats::default()),
            Some(dir) => {
                let state = StateLog::open_with_compaction(dir, config.compact_state_bytes)?;
                JobStore::recover(config.queue_cap, state, &config.policy)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            }
        };
        store.set_quotas(config.quota_inflight, config.quota_queued);
        let metrics = Metrics::default();
        metrics.recovered.add((recovered.restored + recovered.requeued) as u64);
        let coordinator = match &config.cluster {
            None => None,
            Some(cluster) => Some(
                Coordinator::new(cluster.clone())
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?,
            ),
        };
        let shared = Arc::new(Shared {
            store,
            metrics,
            cache: SimulatorCache::with_capacity(config.cache_capacity),
            coordinator,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            journal: Mutex::new(journal),
            addr,
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (use after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until drained: accepts connections, executes jobs, and
    /// returns only after `POST /v1/shutdown` has stopped admissions and
    /// every in-flight and queued job has finished (journal flushed).
    ///
    /// # Errors
    ///
    /// Propagates fatal accept-loop errors; per-connection errors are
    /// answered with an HTTP status and never end the server.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for w in 0..self.shared.config.workers {
            let shared = Arc::clone(&self.shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ilt-server-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn job worker"),
            );
        }

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection itself is dropped unanswered
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue, // transient accept error (EMFILE, reset)
            };
            let shared = Arc::clone(&self.shared);
            if shared.active_connections.fetch_add(1, Ordering::SeqCst)
                >= shared.config.max_connections
            {
                shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                let mut stream = stream;
                let _ = Response::error(503, "connection limit reached")
                    .with_header("retry-after", "1")
                    .write_to(&mut stream);
                continue;
            }
            std::thread::Builder::new()
                .name("ilt-server-conn".into())
                .spawn(move || {
                    handle_connection(&shared, stream);
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("spawn connection handler");
        }

        // Drain: no new admissions, workers finish queued + in-flight jobs.
        self.shared.store.close();
        for handle in workers {
            let _ = handle.join();
        }
        self.shared.store.abandon_queued();
        // Let in-flight responses (including the shutdown ack) finish.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.active_connections.load(Ordering::SeqCst) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(journal) = self.shared.journal.lock().expect("journal lock").as_mut() {
            let _ = journal.flush();
        }
        Ok(())
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((id, case, config, query)) = shared.store.take_next() {
        let started = Instant::now();
        let cases = [case];
        let outcome = match (&shared.coordinator, &query) {
            // Recovered pre-cluster submissions have no stored query; they
            // fall through to local execution rather than being guessed at.
            (Some(coordinator), Some(query)) => {
                run_clustered(shared, coordinator, id, &cases, &config, query)
            }
            _ => run_batch(&cases, &config, &shared.cache),
        };
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        // A cancelled run (token set, at least one tile skipped) is a
        // distinct terminal state: no mask, no failure. A job that managed
        // to complete every tile despite a late cancel stays Done —
        // cancellation is best-effort by design.
        if config.cancel.is_cancelled() {
            if let Ok(out) = &outcome {
                if out.cases.first().is_some_and(|c| c.cancelled_tiles > 0) {
                    append_journal(shared, &out.report.records);
                    shared.metrics.cancelled.inc();
                    shared.store.finish_cancelled(id);
                    sweep_results(shared);
                    continue;
                }
            }
        }
        let outcome = outcome.map(|mut out| {
            let result = out.cases.pop().expect("one case in, one result out");
            for record in &out.report.records {
                shared.metrics.observe_stages(&record.times, record.wall_ms);
                match &record.status {
                    JobStatus::Failed(reason) => {
                        shared.metrics.tile_failures.inc(failure_kind(reason));
                    }
                    JobStatus::Degraded(_) => shared.metrics.degraded_tiles.inc(),
                    JobStatus::Done | JobStatus::Cancelled => {}
                }
            }
            append_journal(shared, &out.report.records);
            JobDone {
                mask_hash: field_hash(&result.mask),
                mask: Some(result.mask),
                records: out.report.records,
                tiles: result.tiles,
                failed_tiles: result.failed_tiles,
                degraded_tiles: result.degraded_tiles,
                eval: result.eval,
                wall_ms,
            }
        });
        let failed = match &outcome {
            Ok(done) => done.failed_tiles > 0,
            Err(_) => true,
        };
        if failed {
            shared.metrics.failed.inc();
        } else {
            shared.metrics.completed.inc();
        }
        shared.store.finish(id, outcome);
        sweep_results(shared);
    }
}

/// Executes one job by sharding its tile plan across the cluster's worker
/// replicas and reassembling the streamed per-tile results centrally.
/// Stitching, seam policy, and whole-clip evaluation run through the exact
/// same [`assemble_batch`] path a local `run_batch` uses, so the output
/// mask is byte-identical to single-process execution of the same request.
fn run_clustered(
    shared: &Shared,
    coordinator: &Coordinator,
    id: usize,
    cases: &[BatchCase; 1],
    config: &BatchConfig,
    query: &str,
) -> Result<BatchOutcome, String> {
    let started = Instant::now();
    // Fault injection stays local to each process: the coordinator strips
    // `inject=` from the dispatched query, and a worker started with its
    // own `--inject` plan applies that one instead.
    let wire_query = strip_query_param(query, "inject");
    let plan = planned_job_list(cases, config)?;
    // Inline-target submissions carry the raster in the dispatch body;
    // case/via sources are re-resolved by name on the worker side.
    let named_source = query
        .split('&')
        .any(|pair| pair.starts_with("case=") || pair.starts_with("via="));
    let body =
        if named_source { Vec::new() } else { pgm_bytes(&cases[0].target, 0.0, 1.0) };
    let outputs = coordinator.run_job(
        id,
        &wire_query,
        &body,
        &plan,
        &config.cancel,
        &config.progress,
    )?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    assemble_batch(cases, config, outputs, &shared.cache, wall_ms)
}

/// Drops every `key=...` pair from a URL query string (used to keep fault
/// plans out of cluster dispatches).
fn strip_query_param(query: &str, key: &str) -> String {
    query
        .split('&')
        .filter(|pair| pair.split_once('=').map_or(*pair, |(k, _)| k) != key)
        .collect::<Vec<_>>()
        .join("&")
}

/// `GET /v1/members`: the live membership with per-worker health —
/// liveness, drain flag, breaker state, and dispatch ledgers.
fn render_members(coordinator: &Coordinator) -> String {
    let mut body = String::from("{\"members\":[");
    for (i, view) in coordinator.member_views().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"addr\":\"{}\",\"alive\":{},\"draining\":{},\"breaker\":\"{}\",\
             \"inflight\":{},\"dispatches\":{},\"completed\":{}}}",
            view.addr, view.alive, view.draining, view.breaker, view.inflight,
            view.dispatches, view.completed
        ));
    }
    body.push_str("]}");
    body
}

/// Worker addresses travel into metric labels and JSON unescaped; keep
/// them to the `host:port` alphabet.
fn valid_member_addr(addr: &str) -> bool {
    !addr.is_empty()
        && addr.len() <= 256
        && addr
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b':' | b'-' | b'_' | b'['| b']'))
}

/// `POST /v1/members?addr=H:P&action=join|leave|drain`: mutates the live
/// membership. Join is what `ilt worker --register` calls after binding;
/// drain then leave is the graceful decommission sequence.
fn member_action(coordinator: &Coordinator, req: &Request) -> Response {
    let Some(addr) = req.query_param("addr") else {
        return Response::error(400, "missing addr= parameter");
    };
    if !valid_member_addr(addr) {
        return Response::error(400, &format!("bad member address {addr:?}"));
    }
    let action = req.query_param("action").unwrap_or("join");
    let (changed, verb) = match action {
        "join" => (coordinator.join(addr), "joined"),
        "leave" => (coordinator.leave(addr), "left"),
        "drain" => (coordinator.drain(addr), "draining"),
        other => return Response::error(400, &format!("unknown member action {other:?}")),
    };
    if changed {
        Response::json(200, format!("{{\"addr\":\"{addr}\",\"state\":\"{verb}\"}}"))
    } else {
        let why = if action == "join" { "already a member" } else { "not a member" };
        Response::error(409, &format!("{action} {addr}: {why}"))
    }
}

/// Applies the TTL / residency eviction policy; called after every finished
/// job and on every metrics scrape (the only moments residency can change
/// or expiry becomes observable).
fn sweep_results(shared: &Shared) {
    if shared.config.result_ttl.is_none()
        && shared.config.max_resident_masks == usize::MAX
    {
        return;
    }
    let evicted =
        shared.store.sweep(shared.config.result_ttl, shared.config.max_resident_masks);
    shared.metrics.evicted.add(evicted as u64);
}

fn append_journal(shared: &Shared, records: &[ilt_runtime::JobRecord]) {
    let mut guard = shared.journal.lock().expect("journal lock");
    if let Some(file) = guard.as_mut() {
        let mut lines = String::new();
        for record in records {
            lines.push_str(&record.to_json());
            lines.push('\n');
        }
        // Journal loss must never fail a job; the records stay queryable
        // over HTTP either way.
        let _ = file.write_all(lines.as_bytes());
        let _ = file.flush();
    }
}

/// Serves one connection through the shared transport keep-alive loop
/// ([`crate::http::serve_connection`], the same machinery cluster workers
/// use); draining downgrades in-flight connections to `Connection: close`.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let options = ConnOptions {
        limits: shared.config.limits,
        read_timeout: shared.config.read_timeout,
        write_timeout: shared.config.write_timeout,
        idle_timeout: shared.config.idle_timeout,
        keep_alive_requests: shared.config.keep_alive_requests,
    };
    crate::http::serve_connection(
        stream,
        &options,
        |request| route(shared, request),
        || !shared.shutdown.load(Ordering::SeqCst),
    );
}

fn route(shared: &Shared, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ok\n")
            }
        }
        (_, ["healthz"]) => method_not_allowed("GET"),

        ("GET", ["metrics"]) => {
            sweep_results(shared);
            let gauges = Gauges {
                queue_depth: shared.store.queue_depth_by_class(),
                running: shared.store.running(),
                cache_entries: shared.cache.len(),
                cache_hits: shared.cache.hits(),
                cache_misses: shared.cache.misses(),
                cache_evictions: shared.cache.evictions(),
            };
            let mut body = shared.metrics.render(&gauges);
            if let Some(coordinator) = &shared.coordinator {
                coordinator.render_metrics(&mut body);
            }
            Response::text(200, body)
        }
        (_, ["metrics"]) => method_not_allowed("GET"),

        ("POST", ["v1", "jobs"]) => submit_job(shared, req),
        ("GET", ["v1", "jobs"]) => Response::json(200, shared.store.render_list()),
        (_, ["v1", "jobs"]) => method_not_allowed("GET, POST"),

        ("GET", ["v1", "jobs", id]) => match id.parse::<usize>() {
            Err(_) => Response::error(400, &format!("bad job id {id:?}")),
            Ok(id) => {
                let base64 = req.query_param("mask") == Some("base64");
                match shared.store.render_detail(id, base64) {
                    Some(body) => Response::json(200, body),
                    None => Response::error(404, &format!("no job {id}")),
                }
            }
        },
        ("DELETE", ["v1", "jobs", id]) => match id.parse::<usize>() {
            Err(_) => Response::error(400, &format!("bad job id {id:?}")),
            Ok(id) => cancel_job(shared, id),
        },
        (_, ["v1", "jobs", _]) => method_not_allowed("GET, DELETE"),

        ("GET", ["v1", "jobs", id, "mask"]) => match id.parse::<usize>() {
            Err(_) => Response::error(400, &format!("bad job id {id:?}")),
            Ok(id) => match shared.store.mask_pgm(id) {
                MaskFetch::Ready(bytes) => Response::pgm(bytes),
                MaskFetch::Rehydrated(bytes) => {
                    shared.metrics.rehydrated.inc();
                    Response::pgm(bytes)
                }
                MaskFetch::NotReady(state) => Response::error(
                    409,
                    &format!("job {id} has no mask yet (state: {state:?})"),
                ),
                MaskFetch::Gone => Response::error(
                    410,
                    &format!(
                        "job {id} finished but its mask was evicted and is not recoverable"
                    ),
                ),
                MaskFetch::NoSuchJob => Response::error(404, &format!("no job {id}")),
            },
        },
        (_, ["v1", "jobs", _, "mask"]) => method_not_allowed("GET"),

        ("GET", ["v1", "members"]) => match &shared.coordinator {
            None => Response::error(409, "not a cluster coordinator (no workers configured)"),
            Some(coordinator) => Response::json(200, render_members(coordinator)),
        },
        ("POST", ["v1", "members"]) => match &shared.coordinator {
            None => Response::error(409, "not a cluster coordinator (no workers configured)"),
            Some(coordinator) => member_action(coordinator, req),
        },
        (_, ["v1", "members"]) => method_not_allowed("GET, POST"),

        ("POST", ["v1", "shutdown"]) => {
            start_drain(shared);
            Response::json(202, "{\"state\":\"draining\"}")
        }
        (_, ["v1", "shutdown"]) => method_not_allowed("POST"),

        _ => Response::error(404, &format!("no route for {} {}", req.method, req.path)),
    }
}

fn method_not_allowed(allow: &str) -> Response {
    Response::error(405, "method not allowed").with_header("allow", allow)
}

/// `DELETE /v1/jobs/{id}`: a queued job dies immediately, a running job is
/// asked to stop at its next tile boundary — both answer `202 Accepted`
/// (cancellation of a running job is asynchronous and best-effort). A job
/// already in a terminal state answers `409 Conflict` stating that state.
fn cancel_job(shared: &Shared, id: usize) -> Response {
    match shared.store.cancel(id) {
        CancelOutcome::Cancelled => {
            shared.metrics.cancelled.inc();
            Response::json(202, format!("{{\"id\":{id},\"state\":\"cancelled\"}}"))
        }
        CancelOutcome::Cancelling => {
            Response::json(202, format!("{{\"id\":{id},\"state\":\"cancelling\"}}"))
        }
        CancelOutcome::AlreadyFinished(state) => Response::error(
            409,
            &format!("job {id} already finished (state: {state:?})"),
        ),
        CancelOutcome::NoSuchJob => Response::error(404, &format!("no job {id}")),
    }
}

/// Client ids travel into metric labels and state-log JSON unescaped; keep
/// them to a flat identifier alphabet, bounded.
fn valid_client_id(client: &str) -> bool {
    !client.is_empty()
        && client.len() <= 64
        && client
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Extracts the multi-tenant carriers from a submission: `X-Ilt-Client`
/// (default `anonymous`) and `X-Ilt-Priority` (`high`/`normal`/`low`,
/// default `normal`).
fn admission_from(req: &Request) -> Result<Admission, String> {
    let client = req.header("x-ilt-client").unwrap_or("anonymous");
    if !valid_client_id(client) {
        return Err(format!(
            "bad X-Ilt-Client {client:?}: expected 1-64 chars of [A-Za-z0-9._-]"
        ));
    }
    let class = match req.header("x-ilt-priority") {
        None => PriorityClass::Normal,
        Some(p) => PriorityClass::parse(p).ok_or_else(|| {
            format!("bad X-Ilt-Priority {p:?}: expected high, normal, or low")
        })?,
    };
    Ok(Admission { client: client.to_string(), class })
}

fn submit_job(shared: &Shared, req: &Request) -> Response {
    let admission = match admission_from(req) {
        Ok(a) => a,
        Err(why) => {
            shared.metrics.rejected.inc();
            return Response::error(400, &why);
        }
    };
    let params = match JobParams::from_request(req, &shared.config.policy) {
        Ok(p) => p,
        Err(why) => {
            shared.metrics.rejected.inc();
            return Response::error(400, &why);
        }
    };
    let (case, config) = match params.plan() {
        Ok(planned) => planned,
        Err(why) => {
            shared.metrics.rejected.inc();
            return Response::error(400, &why);
        }
    };
    match shared.store.submit_persisted_as(&params, case, config, admission) {
        Ok(id) => {
            shared.metrics.accepted.inc();
            Response::json(
                202,
                format!(
                    "{{\"id\":{id},\"name\":\"{}\",\"state\":\"queued\",\"queue_depth\":{}}}",
                    ilt_runtime::json_escape(&params.name),
                    shared.store.queue_depth()
                ),
            )
            .with_header("location", format!("/v1/jobs/{id}"))
        }
        Err(SubmitError::Full { capacity }) => {
            shared.metrics.rejected.inc();
            Response::error(503, &format!("admission queue full ({capacity} jobs); retry later"))
                .with_header("retry-after", "1")
        }
        Err(SubmitError::Draining) => {
            shared.metrics.rejected.inc();
            Response::error(503, "server is draining").with_header("retry-after", "5")
        }
        Err(SubmitError::Quota { client, scope, limit }) => {
            shared.metrics.rejected_quota.inc(&client);
            Response::error(
                429,
                &format!("client {client:?} is over its {scope} quota ({limit}); retry later"),
            )
            .with_header("retry-after", "1")
        }
    }
}

/// Stops admissions and wakes the accept loop; the SIGTERM-equivalent
/// entry point (`std` offers no portable signal handling, so the trigger
/// is an admin endpoint on the loopback listener).
fn start_drain(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    shared.store.close();
    // Nudge the accept loop out of its blocking accept.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}
