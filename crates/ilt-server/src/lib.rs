//! A std-only HTTP/1.1 job service over the `ilt-runtime` batch engine.
//!
//! The batch CLI runs one shot and exits; this crate turns the same
//! pool/cache/journal stack into a long-lived service (`ilt serve`) that
//! accepts ILT jobs over HTTP and applies production disciplines with zero
//! dependencies beyond `std`:
//!
//! - **Bounded admission**: a fixed-capacity queue; submissions beyond it
//!   get `503` + `Retry-After` (backpressure, never unbounded memory).
//! - **Robust HTTP**: hand-rolled request parsing with head/body size caps
//!   and per-socket read/write timeouts ([`http`]).
//! - **Job lifecycle**: `POST /v1/jobs` (benchmark case, via pattern, or
//!   inline PGM target, with per-request tile/halo/iteration overrides) →
//!   `GET /v1/jobs/{id}` (status, metrics, records, optional base64 mask)
//!   → `GET /v1/jobs/{id}/mask` (the mask as binary PGM, byte-identical to
//!   `ilt batch` output for the same configuration).
//! - **Live metrics**: `GET /metrics` in Prometheus text format — job
//!   counters, queue depth, simulator-cache hit/miss/eviction counts, and
//!   per-stage latency histograms fed by the same `StageTimes` the journal
//!   records ([`metrics`]).
//! - **Cancellation**: `DELETE /v1/jobs/{id}` kills a queued job on the
//!   spot and cooperatively stops a running one at its next tile boundary;
//!   `GET /v1/jobs/{id}` streams `tiles_done`/`tiles_planned` progress
//!   while a job runs.
//! - **Keep-alive**: HTTP/1.1 persistent connections with a per-connection
//!   request cap and idle timeout; pipelined requests are served in order.
//! - **Bounded state**: with a state directory, every admission, outcome,
//!   and cancellation is logged for crash-safe restart, and the log is
//!   compacted (live jobs snapshot to `state.snapshot.jsonl`, log
//!   truncated) once it outgrows a configured threshold.
//! - **Graceful drain**: `POST /v1/shutdown` (the SIGTERM-equivalent hook)
//!   stops admissions, finishes queued and in-flight jobs, flushes the
//!   JSON Lines journal, then lets [`Server::run`] return.
//!
//! Every completed job is appended to the same JSON Lines run journal the
//! batch engine writes, so one observability spine serves both modes.
//!
//! ```no_run
//! use ilt_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:8080".into(),
//!     workers: 4,
//!     ..ServerConfig::default()
//! })?;
//! println!("listening on http://{}", server.local_addr());
//! server.run()?; // returns after a graceful drain
//! # std::io::Result::Ok(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ilt_cluster::transport as http;
pub mod harness;
pub mod metrics;
mod server;
mod store;

pub use http::{base64_encode, HttpError, Limits, Request, Response};
pub use ilt_cluster::params::{ExecPolicy, JobParams, JobSource};
pub use ilt_runtime::PriorityClass;
pub use metrics::{ClientCounters, Counter, FailureKinds, Gauges, Histogram, Metrics, FAILURE_KINDS};
pub use server::{Server, ServerConfig};
pub use store::{
    Admission, CancelOutcome, ClientUsage, JobDone, JobState, JobStore, MaskFetch, RecoveryStats,
    StateLog, SubmitError, SNAPSHOT_FILE,
};
