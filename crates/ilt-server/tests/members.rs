//! Loopback coverage for the dynamic-membership API (`/v1/members`) and
//! the cluster metrics families it feeds: join/drain/leave over real
//! sockets, input validation, and the Prometheus exposition including the
//! per-worker breaker gauge.

use ilt_server::harness as util;

use ilt_cluster::ClusterConfig;
use ilt_server::ServerConfig;
use util::{get, post, shutdown, start};

#[test]
fn membership_lifecycle_over_http_and_metrics_exposition() {
    let (addr, handle) = start(ServerConfig {
        workers: 0,
        cluster: Some(ClusterConfig::default()), // empty initial membership
        ..ServerConfig::default()
    });

    let reply = get(addr, "/v1/members");
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert!(reply.text().contains("\"members\":[]"), "{}", reply.text());

    // Join (the default action), then the full lifecycle.
    let reply = post(addr, "/v1/members?addr=127.0.0.1:9999", &[]);
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert!(reply.text().contains("\"joined\""), "{}", reply.text());
    let reply = post(addr, "/v1/members?addr=127.0.0.1:9999&action=join", &[]);
    assert_eq!(reply.status, 409, "duplicate join: {}", reply.text());

    let reply = get(addr, "/v1/members");
    let body = reply.text();
    assert!(body.contains("\"addr\":\"127.0.0.1:9999\""), "{body}");
    assert!(body.contains("\"breaker\":\"closed\""), "{body}");
    assert!(body.contains("\"draining\":false"), "{body}");

    let reply = post(addr, "/v1/members?addr=127.0.0.1:9999&action=drain", &[]);
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert!(get(addr, "/v1/members").text().contains("\"draining\":true"));

    // Validation: label-unsafe addresses and unknown actions are refused.
    let reply = post(addr, "/v1/members?addr=x%22y&action=join", &[]);
    assert_eq!(reply.status, 400, "{}", reply.text());
    let reply = post(addr, "/v1/members?addr=127.0.0.1:1&action=explode", &[]);
    assert_eq!(reply.status, 400, "{}", reply.text());
    let reply = post(addr, "/v1/members", &[]);
    assert_eq!(reply.status, 400, "missing addr: {}", reply.text());

    // The metrics exposition carries the cluster families, including the
    // per-worker breaker gauge, in clean Prometheus text format.
    let metrics = get(addr, "/metrics").text();
    assert!(metrics.contains("ilt_members_joined_total 1\n"), "{metrics}");
    assert!(metrics.contains("ilt_members_left_total 0\n"), "{metrics}");
    assert!(metrics.contains("ilt_shards_speculated_total 0\n"), "{metrics}");
    assert!(metrics.contains("ilt_speculation_wins_total 0\n"), "{metrics}");
    assert!(metrics.contains("ilt_workers_configured 1\n"), "{metrics}");
    assert!(
        metrics.contains("ilt_worker_breaker_state{worker=\"127.0.0.1:9999\"} 0\n"),
        "{metrics}"
    );
    for line in metrics.lines() {
        assert!(line.starts_with('#') || line.split_whitespace().count() == 2, "{line}");
    }

    let reply = post(addr, "/v1/members?addr=127.0.0.1:9999&action=leave", &[]);
    assert_eq!(reply.status, 200, "{}", reply.text());
    let reply = post(addr, "/v1/members?addr=127.0.0.1:9999&action=leave", &[]);
    assert_eq!(reply.status, 409, "double leave: {}", reply.text());
    assert!(get(addr, "/v1/members").text().contains("\"members\":[]"));
    let metrics = get(addr, "/metrics").text();
    assert!(metrics.contains("ilt_members_left_total 1\n"), "{metrics}");
    assert!(metrics.contains("ilt_workers_configured 0\n"), "{metrics}");
    assert!(!metrics.contains("ilt_worker_breaker_state{"), "gauge gone: {metrics}");

    shutdown(addr, handle);
}

#[test]
fn members_api_requires_cluster_mode() {
    let (addr, handle) = start(ServerConfig { workers: 0, ..ServerConfig::default() });
    let reply = get(addr, "/v1/members");
    assert_eq!(reply.status, 409, "{}", reply.text());
    let reply = post(addr, "/v1/members?addr=127.0.0.1:1", &[]);
    assert_eq!(reply.status, 409, "{}", reply.text());
    shutdown(addr, handle);
}
