//! Multi-tenant admission suite: seeded property-style fuzzing of the
//! quota accounting, a concurrent cancel-race reconciliation check, the
//! weighted-priority starvation bound, per-client 429 quota breaches over
//! real HTTP, and mask re-hydration (including corruption and restart
//! legs) — all built on the shared `ilt_server::harness`.

use ilt_server::harness as util;

use std::sync::Arc;
use std::time::Duration;

use ilt_layouts::Xorshift64Star;
use ilt_runtime::{field_hash, BatchCase, BatchConfig, PriorityClass};
use ilt_server::{
    Admission, CancelOutcome, ExecPolicy, JobDone, JobStore, ServerConfig, SubmitError,
};
use util::{
    fast_params, get, job_id, post, post_with_headers, shutdown, start, tiny_pgm, tiny_target,
    wait_for_state, FAST_JOB,
};

/// A policy that accepts `inject=` so tests can stall tiles on demand.
fn chaos_policy() -> ExecPolicy {
    ExecPolicy { allow_inject: true, ..ExecPolicy::default() }
}

/// The planned work unit every fuzz submission clones.
fn fast_work() -> (BatchCase, BatchConfig) {
    fast_params(util::tiny_target()).plan().expect("fast params plan")
}

/// A successful outcome for a store-level job (1 tile, tiny mask).
fn done() -> JobDone {
    let mask = tiny_target().threshold(0.5);
    JobDone {
        mask_hash: field_hash(&mask),
        mask: Some(mask),
        records: Vec::new(),
        tiles: 1,
        failed_tiles: 0,
        degraded_tiles: 0,
        eval: None,
        wall_ms: 1.0,
    }
}

const CLIENTS: [&str; 3] = ["alice", "bob", "carol"];
const QUEUE_CAP: usize = 8;
const QUOTA_INFLIGHT: usize = 4;
const QUOTA_QUEUED: usize = 2;

/// The model's view of one client, mirrored against [`JobStore`].
#[derive(Default, Clone, Copy)]
struct ModelUsage {
    queued: usize,
    active: usize,
}

/// One seeded episode: ~120 random submit/take/finish/cancel/sweep ops
/// across 3 clients × 3 classes, with a shadow model predicting every
/// admission verdict; reconciles usage and queue depth op-by-op and
/// demands both drain to zero at the end.
fn fuzz_episode(seed: u64) {
    let mut rng = Xorshift64Star::new(0x9e37_79b9_0000_0000 ^ seed.wrapping_add(1));
    let mut store = JobStore::new(QUEUE_CAP);
    store.set_quotas(QUOTA_INFLIGHT, QUOTA_QUEUED);
    let (case, config) = fast_work();

    // Shadow model: (id, client_index) per lifecycle bucket.
    let mut queued: Vec<(usize, usize)> = Vec::new();
    let mut running: Vec<(usize, usize)> = Vec::new();
    let mut terminal: Vec<usize> = Vec::new();

    let usage_of = |queued: &[(usize, usize)], running: &[(usize, usize)], c: usize| {
        ModelUsage {
            queued: queued.iter().filter(|&&(_, cl)| cl == c).count(),
            active: running.iter().filter(|&&(_, cl)| cl == c).count(),
        }
    };

    for op in 0..120 {
        match rng.next_u64() % 100 {
            // Submit: the model predicts the exact verdict the store gives.
            0..=39 => {
                let client = (rng.next_u64() % 3) as usize;
                let class = PriorityClass::ALL[(rng.next_u64() % 3) as usize];
                let admission =
                    Admission { client: CLIENTS[client].into(), class };
                let usage = usage_of(&queued, &running, client);
                let verdict = store.submit_as(
                    format!("fuzz{seed}-{op}"),
                    case.clone(),
                    config.clone(),
                    admission,
                );
                if usage.queued >= QUOTA_QUEUED {
                    assert!(
                        matches!(verdict, Err(SubmitError::Quota { scope: "queued", .. })),
                        "seed {seed} op {op}: expected queued-quota rejection"
                    );
                } else if usage.queued + usage.active >= QUOTA_INFLIGHT {
                    assert!(
                        matches!(verdict, Err(SubmitError::Quota { scope: "inflight", .. })),
                        "seed {seed} op {op}: expected inflight-quota rejection"
                    );
                } else if queued.len() >= QUEUE_CAP {
                    assert!(
                        matches!(verdict, Err(SubmitError::Full { .. })),
                        "seed {seed} op {op}: expected queue-full rejection"
                    );
                } else {
                    let id = verdict.unwrap_or_else(|e| {
                        panic!("seed {seed} op {op}: unexpected rejection {e:?}")
                    });
                    queued.push((id, client));
                }
            }
            // Take: guarded on depth because take_next blocks when empty.
            40..=59 => {
                if store.queue_depth() > 0 {
                    let (id, ..) = store.take_next().expect("non-empty queue yields a job");
                    let at = queued
                        .iter()
                        .position(|&(q, _)| q == id)
                        .unwrap_or_else(|| panic!("seed {seed}: took unqueued id {id}"));
                    running.push(queued.remove(at));
                }
            }
            // Finish a running job: success, failure, or cancelled landing.
            60..=74 => {
                if !running.is_empty() {
                    let at = (rng.next_u64() as usize) % running.len();
                    let (id, _) = running.remove(at);
                    match rng.next_u64() % 4 {
                        0 => store.finish(id, Err("injected failure".into())),
                        1 => store.finish_cancelled(id),
                        _ => store.finish(id, Ok(done())),
                    }
                    terminal.push(id);
                }
            }
            // Cancel a random known-or-bogus id; check outcome classes.
            75..=89 => {
                let id = (rng.next_u64() as usize) % 40;
                let outcome = store.cancel(id);
                if let Some(at) = queued.iter().position(|&(q, _)| q == id) {
                    assert_eq!(outcome, CancelOutcome::Cancelled, "seed {seed} id {id}");
                    queued.remove(at);
                    terminal.push(id);
                } else if running.iter().any(|&(r, _)| r == id) {
                    assert_eq!(outcome, CancelOutcome::Cancelling, "seed {seed} id {id}");
                } else if terminal.contains(&id) {
                    assert!(
                        matches!(outcome, CancelOutcome::AlreadyFinished(_)),
                        "seed {seed} id {id}"
                    );
                } else {
                    assert_eq!(outcome, CancelOutcome::NoSuchJob, "seed {seed} id {id}");
                }
            }
            // Evict finished masks; must never touch admission accounting.
            _ => {
                store.sweep(Some(Duration::ZERO), usize::MAX);
            }
        }

        // Op-by-op reconciliation: gauges match the model exactly, and no
        // counter ever leaks or goes negative (the store asserts underflow
        // internally; here we pin the exact values).
        let by_class = store.queue_depth_by_class();
        assert_eq!(
            by_class.iter().sum::<usize>(),
            queued.len(),
            "seed {seed} op {op}: queue depth diverged from the model"
        );
        let usage = store.quota_usage();
        for (c, name) in CLIENTS.iter().enumerate() {
            let want = usage_of(&queued, &running, c);
            let got = usage
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, u)| u)
                .unwrap_or_default();
            assert_eq!(
                (got.queued, got.active),
                (want.queued, want.active),
                "seed {seed} op {op}: usage for {name} diverged"
            );
        }
    }

    // Drain: claim and finish everything left; the store must reconcile
    // to zero — empty usage table, all class gauges at zero.
    while store.queue_depth() > 0 {
        let (id, ..) = store.take_next().expect("drain take");
        let at = queued.iter().position(|&(q, _)| q == id).expect("drain model");
        running.push(queued.remove(at));
    }
    for (id, _) in running.drain(..) {
        store.finish(id, Ok(done()));
    }
    assert!(
        store.quota_usage().is_empty(),
        "seed {seed}: quota usage must be empty after drain: {:?}",
        store.quota_usage()
    );
    assert_eq!(store.queue_depth_by_class(), [0, 0, 0], "seed {seed}");
}

#[test]
fn seeded_fuzz_admission_accounting_never_leaks() {
    // 50 consecutive seeded iterations (the acceptance bar): every episode
    // replays deterministically from its seed on failure.
    for seed in 0..50 {
        fuzz_episode(seed);
    }
}

/// Two real worker threads race take/finish against submit/cancel from the
/// main thread; when the dust settles the per-client accounting must
/// reconcile to zero even for cancels that raced completion.
#[test]
fn concurrent_cancel_races_reconcile_at_drain() {
    let mut store = JobStore::new(64);
    store.set_quotas(0, 0);
    let store = Arc::new(store);
    let (case, config) = fast_work();

    let workers: Vec<_> = (0..2)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                // A cancel may race us: finishing with a result is the
                // "completion wins" outcome and must stay consistent.
                while let Some((id, ..)) = store.take_next() {
                    store.finish(id, Ok(done()));
                }
            })
        })
        .collect();

    let mut rng = Xorshift64Star::new(7);
    for i in 0..40 {
        let admission = Admission {
            client: CLIENTS[(rng.next_u64() % 3) as usize].into(),
            class: PriorityClass::ALL[(rng.next_u64() % 3) as usize],
        };
        let id = store
            .submit_as(format!("race{i}"), case.clone(), config.clone(), admission)
            .expect("no quotas, cap 64: submit always admitted");
        if rng.next_u64() % 2 == 0 {
            // Any outcome class is legal here; accounting is what we pin.
            let _ = store.cancel(id);
        }
    }

    store.close();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert!(
        store.quota_usage().is_empty(),
        "usage must reconcile to zero after the race: {:?}",
        store.quota_usage()
    );
    assert_eq!(store.queue_depth_by_class(), [0, 0, 0]);
    assert_eq!(store.running(), 0);
}

/// A saturating low-priority client must not starve a high-priority job:
/// with one worker and six stalled low jobs queued first, the high job
/// still lands within a bounded number of low completions.
#[test]
fn a_low_priority_flood_cannot_starve_a_high_priority_job() {
    const LOWS: usize = 6;
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        policy: chaos_policy(),
        ..ServerConfig::default()
    });
    let pgm = tiny_pgm();

    // Each low job stalls 250ms on its single tile, so the flood holds the
    // lone worker for ~1.5s total.
    let mut low_ids = Vec::new();
    for _ in 0..LOWS {
        let reply = post_with_headers(
            addr,
            &format!("/v1/jobs?{FAST_JOB}&inject=delay@0=250"),
            &[("x-ilt-client", "flood"), ("x-ilt-priority", "low")],
            &pgm,
        );
        assert_eq!(reply.status, 202, "{}", reply.text());
        low_ids.push(job_id(&reply).unwrap());
    }
    let reply = post_with_headers(
        addr,
        &format!("/v1/jobs?{FAST_JOB}"),
        &[("x-ilt-client", "vip"), ("x-ilt-priority", "high")],
        &pgm,
    );
    assert_eq!(reply.status, 202, "{}", reply.text());
    let vip = job_id(&reply).unwrap();

    wait_for_state(addr, vip, "done");
    // One atomic snapshot of the whole table: the flood may have landed at
    // most the in-flight job plus one more by the time we observe the vip
    // job done — weighted dequeue served `high` ahead of the backlog.
    let list = get(addr, "/v1/jobs").text();
    let lows_done = list.matches("\"client\":\"flood\",\"class\":\"low\",\"state\":\"done\"").count();
    assert!(
        lows_done <= 3,
        "high-priority job waited behind {lows_done} of {LOWS} low jobs: {list}"
    );

    // No starvation the other way either: the flood drains completely.
    for id in low_ids {
        wait_for_state(addr, id, "done");
    }
    shutdown(addr, handle);
}

/// Quota breach over HTTP: the third submit from a client with one running
/// and one queued job answers 429 + `Retry-After`, other clients keep
/// flowing, the rejection metric is labeled per client, and the quota
/// frees up once the backlog drains.
#[test]
fn quota_breach_gets_429_and_other_clients_still_complete() {
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        policy: chaos_policy(),
        quota_queued: 1,
        ..ServerConfig::default()
    });
    let pgm = tiny_pgm();
    let alice: &[(&str, &str)] = &[("x-ilt-client", "alice")];
    let bob: &[(&str, &str)] = &[("x-ilt-client", "bob")];

    // Job 0 stalls long enough to pin the worker; once it is `running` it
    // no longer counts against alice's *queued* quota.
    let reply = post_with_headers(
        addr,
        &format!("/v1/jobs?{FAST_JOB}&inject=delay@0=800"),
        alice,
        &pgm,
    );
    assert_eq!(reply.status, 202, "{}", reply.text());
    wait_for_state(addr, 0, "running");

    let reply = post_with_headers(addr, &format!("/v1/jobs?{FAST_JOB}"), alice, &pgm);
    assert_eq!(reply.status, 202, "queued slot: {}", reply.text());
    let reply = post_with_headers(addr, &format!("/v1/jobs?{FAST_JOB}"), alice, &pgm);
    assert_eq!(reply.status, 429, "{}", reply.text());
    assert_eq!(reply.header("retry-after"), Some("1"), "429 must carry Retry-After");
    assert!(
        reply.text().contains("client \\\"alice\\\" is over its queued quota (1)"),
        "{}",
        reply.text()
    );

    // Another client is not collateral damage of alice's flood.
    let reply = post_with_headers(addr, &format!("/v1/jobs?{FAST_JOB}"), bob, &pgm);
    assert_eq!(reply.status, 202, "{}", reply.text());
    let bob_id = job_id(&reply).unwrap();
    wait_for_state(addr, bob_id, "done");

    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_jobs_rejected_quota_total{client=\"alice\"} 1\n"), "{text}");

    // Once the backlog drains the quota frees up again.
    wait_for_state(addr, 1, "done");
    let reply = post_with_headers(addr, &format!("/v1/jobs?{FAST_JOB}"), alice, &pgm);
    assert_eq!(reply.status, 202, "quota must free after drain: {}", reply.text());

    // Malformed admission headers are a client error, not a panic.
    let reply = post_with_headers(addr, &format!("/v1/jobs?{FAST_JOB}"), &[("x-ilt-priority", "urgent")], &pgm);
    assert_eq!(reply.status, 400, "{}", reply.text());
    let reply = post_with_headers(addr, &format!("/v1/jobs?{FAST_JOB}"), &[("x-ilt-client", "no spaces")], &pgm);
    assert_eq!(reply.status, 400, "{}", reply.text());

    shutdown(addr, handle);
}

/// The inflight quota counts running + queued jobs, at the store level:
/// claiming a job does not free the slot; finishing does.
#[test]
fn inflight_quota_counts_running_jobs() {
    let mut store = JobStore::new(8);
    store.set_quotas(1, 0);
    let (case, config) = fast_work();
    let alice = || Admission { client: "alice".into(), class: PriorityClass::Normal };

    let id = store.submit_as("a0".into(), case.clone(), config.clone(), alice()).unwrap();
    let taken = store.take_next().expect("claim a0");
    assert_eq!(taken.0, id);
    let verdict = store.submit_as("a1".into(), case.clone(), config.clone(), alice());
    assert!(
        matches!(verdict, Err(SubmitError::Quota { scope: "inflight", limit: 1, .. })),
        "running jobs must count against the inflight quota"
    );
    // Other clients are unaffected; finishing frees alice's slot.
    store
        .submit_as("b0".into(), case.clone(), config.clone(), Admission {
            client: "bob".into(),
            class: PriorityClass::High,
        })
        .unwrap();
    store.finish(id, Ok(done()));
    store.submit_as("a1".into(), case, config, alice()).expect("slot freed by finish");
}

/// Residency eviction followed by `GET /mask` re-hydrates the durable copy
/// byte-identically; corrupting the on-disk file turns the same request
/// into a hash-verified 410.
#[test]
fn eviction_rehydrates_byte_identical_and_corruption_is_410() {
    let state_dir = util::temp_dir("rehydrate_state");
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        max_resident_masks: 1,
        ..ServerConfig::default()
    });
    let pgm = tiny_pgm();

    assert_eq!(post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm).status, 202);
    wait_for_state(addr, 0, "done");
    let mask0 = get(addr, "/v1/jobs/0/mask").body;
    assert!(!mask0.is_empty());

    // A second finished job pushes job 0 (oldest finish) past the
    // residency cap; the eviction sweep runs on finish and on scrape.
    assert_eq!(post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm).status, 202);
    wait_for_state(addr, 1, "done");
    wait_for_evicted(addr, 0);

    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert_eq!(reply.body, mask0, "re-hydrated mask must be byte-identical");
    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_masks_rehydrated_total 1\n"), "{text}");

    // Corrupt the durable copy. The re-hydration path must refuse bits
    // that no longer hash to what the log recorded — 410, not garbage.
    std::fs::write(state_dir.join("job-0.pgm"), b"P5\n2 2\n255\nXXXX").expect("corrupt mask file");
    wait_for_evicted(addr, 0); // scrape-driven sweep re-evicts the rehydrated copy
    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 410, "corrupted durable mask must be 410: {}", reply.text());

    // Job 1's healthy mask is untouched by its neighbour's corruption.
    assert_eq!(get(addr, "/v1/jobs/1/mask").status, 200);
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Restart leg: recovery brings both masks back resident, the first sweep
/// re-evicts down to the cap, and the evicted one re-hydrates — the
/// durable copy survives process death with bytes intact.
#[test]
fn restart_then_rehydrate_after_eviction() {
    let state_dir = util::temp_dir("restart_rehydrate");
    let config = || ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        max_resident_masks: 1,
        ..ServerConfig::default()
    };
    let pgm = tiny_pgm();

    let (addr, handle) = start(config());
    assert_eq!(post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm).status, 202);
    wait_for_state(addr, 0, "done");
    let mask0 = get(addr, "/v1/jobs/0/mask").body;
    assert_eq!(post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm).status, 202);
    wait_for_state(addr, 1, "done");
    shutdown(addr, handle);

    let (addr, handle) = start(config());
    // Recovery restores both jobs; the cap then evicts the older mask on
    // the first sweep, and the mask endpoint restores it on demand.
    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_jobs_recovered_total 2\n"), "{text}");
    wait_for_evicted(addr, 0);
    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert_eq!(reply.body, mask0, "mask must survive restart + eviction byte-identically");
    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_masks_rehydrated_total 1\n"), "{text}");
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Polls job detail (each GET also triggers the scrape-path sweep via
/// `/metrics`) until the mask is reported non-resident.
fn wait_for_evicted(addr: std::net::SocketAddr, id: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let _ = get(addr, "/metrics"); // drive the eviction sweep
        let text = get(addr, &format!("/v1/jobs/{id}")).text();
        if text.contains("\"mask_resident\":false") {
            return;
        }
        assert!(std::time::Instant::now() < deadline, "job {id} mask never evicted: {text}");
        std::thread::sleep(Duration::from_millis(15));
    }
}
