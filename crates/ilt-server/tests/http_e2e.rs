//! Loopback integration tests: the server is exercised through real TCP
//! sockets with the shared `ilt_server::harness` client (also used by the
//! lifecycle suite and the `ilt-perf` server workloads), covering the
//! robustness paths (malformed requests, oversized bodies, queue-full
//! backpressure) and the full submit → poll → fetch-mask round trip, whose
//! result must be byte-identical to running the batch engine in-process.

use ilt_server::harness as util;

use std::time::Duration;

use ilt_runtime::{run_batch, SimulatorCache};
use ilt_server::{base64_encode, Limits, ServerConfig};
use util::{
    delete, exchange, fast_params, get, post, shutdown, start, tiny_pgm, tiny_target, FAST_JOB,
};

#[test]
fn rejects_malformed_and_unroutable_requests() {
    let (addr, handle) = start(ServerConfig { workers: 0, ..ServerConfig::default() });

    let reply = exchange(addr, b"BOGUS\r\nhost: t\r\n\r\n");
    assert_eq!(reply.status, 400, "{}", reply.text());
    let reply = exchange(addr, b"GET /healthz SPDY/9\r\n\r\n");
    assert_eq!(reply.status, 400);

    let reply = get(addr, "/no/such/route");
    assert_eq!(reply.status, 404, "{}", reply.text());
    let reply = get(addr, "/v1/jobs/notanumber");
    assert_eq!(reply.status, 400);
    let reply = get(addr, "/v1/jobs/999");
    assert_eq!(reply.status, 404, "{}", reply.text());
    let reply = get(addr, "/v1/jobs/999/mask");
    assert_eq!(reply.status, 404);

    // The collection endpoint takes GET/POST only; DELETE targets one job.
    let reply = delete(addr, "/v1/jobs");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("GET, POST"));

    let reply = post(addr, "/v1/jobs", b"");
    assert_eq!(reply.status, 400, "no source given: {}", reply.text());
    let reply = post(addr, "/v1/jobs?case=case1&grid=100", b"");
    assert_eq!(reply.status, 400);

    shutdown(addr, handle);
}

#[test]
fn oversized_bodies_and_heads_are_refused() {
    let limits = Limits { max_head_bytes: 2048, max_body_bytes: 4096 };
    let (addr, handle) = start(ServerConfig { workers: 0, limits, ..ServerConfig::default() });

    // Declared too large: refused from the Content-Length alone.
    let raw = b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
    let reply = exchange(addr, raw);
    assert_eq!(reply.status, 413, "{}", reply.text());

    // Oversized head.
    let mut raw = b"GET /v1/jobs?x=".to_vec();
    raw.extend(std::iter::repeat(b'a').take(4096));
    raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let reply = exchange(addr, &raw);
    assert_eq!(reply.status, 431);

    shutdown(addr, handle);
}

#[test]
fn queue_overflow_gets_503_with_retry_after_and_metrics_count_it() {
    // No workers: admitted jobs stay queued, so overflow is deterministic.
    let (addr, handle) =
        start(ServerConfig { workers: 0, queue_cap: 2, ..ServerConfig::default() });
    let submit = format!("/v1/jobs?{FAST_JOB}");
    let pgm = tiny_pgm();

    let reply = post(addr, &submit, &pgm);
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert!(reply.text().contains("\"id\":0"));
    let reply = post(addr, &submit, &pgm);
    assert_eq!(reply.status, 202);

    for _ in 0..3 {
        let reply = post(addr, &submit, &pgm);
        assert_eq!(reply.status, 503, "{}", reply.text());
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert!(reply.text().contains("queue full"));
    }

    // A queued (not yet run) job has no mask: 409, not 404.
    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 409);

    let reply = get(addr, "/metrics");
    assert_eq!(reply.status, 200);
    let text = reply.text();
    assert!(text.contains("ilt_jobs_accepted_total 2\n"), "{text}");
    assert!(text.contains("ilt_jobs_rejected_total 3\n"), "{text}");
    assert!(text.contains("ilt_queue_depth{class=\"normal\"} 2\n"), "{text}");
    assert!(text.contains("ilt_queue_depth{class=\"high\"} 0\n"), "{text}");

    shutdown(addr, handle);
}

#[test]
fn end_to_end_round_trip_matches_the_batch_engine_bit_for_bit() {
    let journal = std::env::temp_dir().join("ilt_server_e2e_journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });

    let reply = get(addr, "/healthz");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.text(), "ok\n");

    // Submit an inline 64x64 target.
    let target = tiny_target();
    let pgm = tiny_pgm();
    let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert_eq!(reply.header("location"), Some("/v1/jobs/0"));

    let detail = util::wait_for_state(addr, 0, "done");
    assert!(detail.contains("\"records\":[{"), "{detail}");
    assert!(detail.contains("\"eval\":{"), "{detail}");

    // The served mask must equal the batch engine's output byte-for-byte.
    let (case, config) = fast_params(target.threshold(0.5)).plan().unwrap();
    let reference = run_batch(&[case], &config, &SimulatorCache::new()).unwrap();
    let expected_pgm = ilt_field::pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);

    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("content-type"), Some("image/x-portable-graymap"));
    assert_eq!(reply.body, expected_pgm, "served mask differs from batch output");

    // The base64 view inlines exactly the same bytes.
    let reply = get(addr, "/v1/jobs/0?mask=base64");
    assert_eq!(reply.status, 200);
    assert!(
        reply
            .text()
            .contains(&format!("\"mask_pgm_base64\":\"{}\"", base64_encode(&expected_pgm))),
        "base64 mask mismatch"
    );

    // Listing shows the finished job; metrics agree with one accepted,
    // one completed, zero failed.
    let reply = get(addr, "/v1/jobs");
    assert!(reply.text().contains("\"state\":\"done\""));
    let reply = get(addr, "/metrics");
    let text = reply.text();
    assert!(text.contains("ilt_jobs_accepted_total 1\n"), "{text}");
    assert!(text.contains("ilt_jobs_completed_total 1\n"), "{text}");
    assert!(text.contains("ilt_jobs_failed_total 0\n"), "{text}");
    assert!(text.contains("ilt_cache_misses_total 1\n"), "{text}");
    assert!(text.contains("ilt_stage_latency_ms_count{stage=\"optimize\"} 1\n"), "{text}");

    shutdown(addr, handle);

    // Drain flushed the journal: one JSON line for the finished job.
    let journal_text = std::fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(lines.len(), 1, "{journal_text}");
    assert!(lines[0].contains("\"case\":\"inline\""), "{journal_text}");
    assert!(lines[0].contains("\"status\":\"done\""), "{journal_text}");
    let _ = std::fs::remove_file(&journal);
}

/// Restarting with the same state directory must bring finished jobs back
/// (mask byte-identical), and a TTL of zero must evict resident masks —
/// which the mask endpoint then re-hydrates from the durable copy
/// (byte-identical again) rather than answering 410.
#[test]
fn restart_recovers_state_and_ttl_evicts_masks() {
    let state_dir = util::temp_dir("e2e_state");
    let pgm = tiny_pgm();

    // First life: run one job to completion, then drain.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(reply.status, 202, "{}", reply.text());
    util::wait_for_state(addr, 0, "done");
    let first_mask = get(addr, "/v1/jobs/0/mask").body;
    shutdown(addr, handle);

    // Second life: same state dir; the job is back without re-running.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    let reply = get(addr, "/v1/jobs/0");
    assert_eq!(reply.status, 200);
    let text = reply.text();
    assert!(text.contains("\"state\":\"done\""), "{text}");
    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, first_mask, "recovered mask must be byte-identical");
    let reply = get(addr, "/metrics");
    assert!(reply.text().contains("ilt_jobs_recovered_total 1\n"), "{}", reply.text());
    shutdown(addr, handle);

    // Third life: an aggressive TTL evicts the recovered mask on the first
    // scrape; the metadata stays, and the mask endpoint re-hydrates the
    // durable copy instead of answering 410.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        result_ttl: Some(Duration::ZERO),
        ..ServerConfig::default()
    });
    let reply = get(addr, "/metrics");
    assert!(reply.text().contains("ilt_masks_evicted_total 1\n"), "{}", reply.text());
    let reply = get(addr, "/v1/jobs/0");
    assert_eq!(reply.status, 200);
    let text = reply.text();
    assert!(text.contains("\"mask_resident\":false"), "{text}");
    assert!(text.contains("\"mask_hash\""), "{text}");
    let reply = get(addr, "/v1/jobs/0/mask");
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert_eq!(reply.body, first_mask, "re-hydrated mask must be byte-identical");
    let reply = get(addr, "/metrics");
    assert!(reply.text().contains("ilt_masks_rehydrated_total 1\n"), "{}", reply.text());
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn draining_server_refuses_new_work_but_finishes_queued_jobs() {
    let (addr, handle) = start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let pgm = tiny_pgm();

    let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(reply.status, 202);

    // Start the drain, then verify the already-submitted job completed:
    // run() only returns once the queue is empty and workers exited.
    let reply = post(addr, "/v1/shutdown", b"");
    assert_eq!(reply.status, 202);
    assert!(reply.text().contains("draining"));
    handle.join().expect("server thread").expect("clean drain");
}
