//! Loopback integration tests: the server is exercised through real TCP
//! sockets with a tiny hand-rolled HTTP client, covering the robustness
//! paths (malformed requests, oversized bodies, queue-full backpressure)
//! and the full submit → poll → fetch-mask round trip, whose result must
//! be byte-identical to running the batch engine in-process.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ilt_field::Field2D;
use ilt_runtime::{run_batch, SeamPolicy, SimulatorCache};
use ilt_server::{base64_encode, JobParams, JobSource, Limits, Server, ServerConfig};

/// One raw HTTP exchange; returns (status, headers, body).
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8(response[..split].to_vec()).expect("utf8 head");
    let body = response[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    exchange(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut raw =
        format!("POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n", body.len())
            .into_bytes();
    raw.extend_from_slice(body);
    exchange(addr, &raw)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _, _) = post(addr, "/v1/shutdown", b"");
    assert_eq!(status, 202);
    handle.join().expect("server thread").expect("clean drain");
}

fn tiny_target() -> Field2D {
    Field2D::from_fn(64, 64, |r, c| {
        if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
    })
}

/// Query params for a job small enough to finish in well under a second.
const FAST_JOB: &str = "clip_nm=512&kernels=3&iters=2";

fn fast_params(target: Field2D) -> JobParams {
    JobParams {
        source: JobSource::Inline(target),
        name: "inline".into(),
        grid: 512,
        clip_nm: 512.0,
        kernels: 3,
        tile: 512,
        halo: 64,
        seam: SeamPolicy::Crop,
        schedule: "fast".into(),
        iters: Some(2),
        max_eff_nm: 8.0,
        threads: 1,
        timeout_s: 0.0,
        retries: 1,
        evaluate: true,
        faults: ilt_runtime::FaultPlan::none(),
    }
}

#[test]
fn rejects_malformed_and_unroutable_requests() {
    let (addr, handle) = start(ServerConfig { workers: 0, ..ServerConfig::default() });

    let (status, _, body) = exchange(addr, b"BOGUS\r\nhost: t\r\n\r\n");
    assert_eq!(status, 400, "{}", body_text(&body));
    let (status, _, _) = exchange(addr, b"GET /healthz SPDY/9\r\n\r\n");
    assert_eq!(status, 400);

    let (status, _, body) = get(addr, "/no/such/route");
    assert_eq!(status, 404, "{}", body_text(&body));
    let (status, _, _) = get(addr, "/v1/jobs/notanumber");
    assert_eq!(status, 400);
    let (status, _, body) = get(addr, "/v1/jobs/999");
    assert_eq!(status, 404, "{}", body_text(&body));
    let (status, _, _) = get(addr, "/v1/jobs/999/mask");
    assert_eq!(status, 404);

    let (status, headers, _) = exchange(addr, b"DELETE /v1/jobs HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("GET, POST"));

    let (status, _, body) = post(addr, "/v1/jobs", b"");
    assert_eq!(status, 400, "no source given: {}", body_text(&body));
    let (status, _, _) = post(addr, "/v1/jobs?case=case1&grid=100", b"");
    assert_eq!(status, 400);

    shutdown(addr, handle);
}

#[test]
fn oversized_bodies_and_heads_are_refused() {
    let limits = Limits { max_head_bytes: 2048, max_body_bytes: 4096 };
    let (addr, handle) = start(ServerConfig { workers: 0, limits, ..ServerConfig::default() });

    // Declared too large: refused from the Content-Length alone.
    let raw = b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
    let (status, _, body) = exchange(addr, raw);
    assert_eq!(status, 413, "{}", body_text(&body));

    // Oversized head.
    let mut raw = b"GET /v1/jobs?x=".to_vec();
    raw.extend(std::iter::repeat(b'a').take(4096));
    raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let (status, _, _) = exchange(addr, &raw);
    assert_eq!(status, 431);

    shutdown(addr, handle);
}

#[test]
fn queue_overflow_gets_503_with_retry_after_and_metrics_count_it() {
    // No workers: admitted jobs stay queued, so overflow is deterministic.
    let (addr, handle) =
        start(ServerConfig { workers: 0, queue_cap: 2, ..ServerConfig::default() });
    let submit = format!("/v1/jobs?{FAST_JOB}");
    let pgm = ilt_field::pgm_bytes(&tiny_target(), 0.0, 1.0);

    let (status, _, body) = post(addr, &submit, &pgm);
    assert_eq!(status, 202, "{}", body_text(&body));
    assert!(body_text(&body).contains("\"id\":0"));
    let (status, _, _) = post(addr, &submit, &pgm);
    assert_eq!(status, 202);

    for _ in 0..3 {
        let (status, headers, body) = post(addr, &submit, &pgm);
        assert_eq!(status, 503, "{}", body_text(&body));
        assert_eq!(header(&headers, "retry-after"), Some("1"));
        assert!(body_text(&body).contains("queue full"));
    }

    // A queued (not yet run) job has no mask: 409, not 404.
    let (status, _, _) = get(addr, "/v1/jobs/0/mask");
    assert_eq!(status, 409);

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert!(text.contains("ilt_jobs_accepted_total 2\n"), "{text}");
    assert!(text.contains("ilt_jobs_rejected_total 3\n"), "{text}");
    assert!(text.contains("ilt_queue_depth 2\n"), "{text}");

    shutdown(addr, handle);
}

#[test]
fn end_to_end_round_trip_matches_the_batch_engine_bit_for_bit() {
    let journal = std::env::temp_dir().join("ilt_server_e2e_journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body_text(&body), "ok\n");

    // Submit an inline 64x64 target.
    let target = tiny_target();
    let pgm = ilt_field::pgm_bytes(&target, 0.0, 1.0);
    let (status, headers, body) = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(status, 202, "{}", body_text(&body));
    assert_eq!(header(&headers, "location"), Some("/v1/jobs/0"));

    // Poll to completion.
    let deadline = Instant::now() + Duration::from_secs(120);
    let detail = loop {
        let (status, _, body) = get(addr, "/v1/jobs/0");
        assert_eq!(status, 200);
        let text = body_text(&body);
        if text.contains("\"state\":\"done\"") {
            break text;
        }
        assert!(
            !text.contains("\"state\":\"failed\""),
            "job failed unexpectedly: {text}"
        );
        assert!(Instant::now() < deadline, "job did not finish in time: {text}");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(detail.contains("\"records\":[{"), "{detail}");
    assert!(detail.contains("\"eval\":{"), "{detail}");

    // The served mask must equal the batch engine's output byte-for-byte.
    let (case, config) = fast_params(target.threshold(0.5)).plan().unwrap();
    let reference = run_batch(&[case], &config, &SimulatorCache::new()).unwrap();
    let expected_pgm = ilt_field::pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);

    let (status, headers, mask) = get(addr, "/v1/jobs/0/mask");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("image/x-portable-graymap"));
    assert_eq!(mask, expected_pgm, "served mask differs from batch output");

    // The base64 view inlines exactly the same bytes.
    let (status, _, body) = get(addr, "/v1/jobs/0?mask=base64");
    assert_eq!(status, 200);
    assert!(
        body_text(&body).contains(&format!("\"mask_pgm_base64\":\"{}\"", base64_encode(&expected_pgm))),
        "base64 mask mismatch"
    );

    // Listing shows the finished job; metrics agree with one accepted,
    // one completed, zero failed.
    let (_, _, body) = get(addr, "/v1/jobs");
    assert!(body_text(&body).contains("\"state\":\"done\""));
    let (_, _, body) = get(addr, "/metrics");
    let text = body_text(&body);
    assert!(text.contains("ilt_jobs_accepted_total 1\n"), "{text}");
    assert!(text.contains("ilt_jobs_completed_total 1\n"), "{text}");
    assert!(text.contains("ilt_jobs_failed_total 0\n"), "{text}");
    assert!(text.contains("ilt_cache_misses_total 1\n"), "{text}");
    assert!(text.contains("ilt_stage_latency_ms_count{stage=\"optimize\"} 1\n"), "{text}");

    shutdown(addr, handle);

    // Drain flushed the journal: one JSON line for the finished job.
    let journal_text = std::fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(lines.len(), 1, "{journal_text}");
    assert!(lines[0].contains("\"case\":\"inline\""), "{journal_text}");
    assert!(lines[0].contains("\"status\":\"done\""), "{journal_text}");
    let _ = std::fs::remove_file(&journal);
}

/// Restarting with the same state directory must bring finished jobs back
/// (mask byte-identical), and a TTL of zero must evict resident masks into
/// `410 Gone` while their metadata stays queryable.
#[test]
fn restart_recovers_state_and_ttl_evicts_masks() {
    let state_dir = std::env::temp_dir()
        .join(format!("ilt_server_e2e_state_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let pgm = ilt_field::pgm_bytes(&tiny_target(), 0.0, 1.0);

    // First life: run one job to completion, then drain.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    let (status, _, body) = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(status, 202, "{}", body_text(&body));
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, _, body) = get(addr, "/v1/jobs/0");
        let text = body_text(&body);
        if text.contains("\"state\":\"done\"") {
            break;
        }
        assert!(!text.contains("\"state\":\"failed\""), "{text}");
        assert!(Instant::now() < deadline, "job did not finish: {text}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (_, _, first_mask) = get(addr, "/v1/jobs/0/mask");
    shutdown(addr, handle);

    // Second life: same state dir; the job is back without re-running.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    let (status, _, body) = get(addr, "/v1/jobs/0");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert!(text.contains("\"state\":\"done\""), "{text}");
    let (status, _, mask) = get(addr, "/v1/jobs/0/mask");
    assert_eq!(status, 200);
    assert_eq!(mask, first_mask, "recovered mask must be byte-identical");
    let (_, _, body) = get(addr, "/metrics");
    assert!(body_text(&body).contains("ilt_jobs_recovered_total 1\n"), "{}", body_text(&body));
    shutdown(addr, handle);

    // Third life: an aggressive TTL evicts the recovered mask on the first
    // scrape; the mask endpoint answers 410, the metadata stays.
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        result_ttl: Some(Duration::ZERO),
        ..ServerConfig::default()
    });
    let (_, _, body) = get(addr, "/metrics");
    assert!(body_text(&body).contains("ilt_masks_evicted_total 1\n"), "{}", body_text(&body));
    let (status, _, body) = get(addr, "/v1/jobs/0/mask");
    assert_eq!(status, 410, "{}", body_text(&body));
    let (status, _, body) = get(addr, "/v1/jobs/0");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert!(text.contains("\"mask_resident\":false"), "{text}");
    assert!(text.contains("\"mask_hash\""), "{text}");
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn draining_server_refuses_new_work_but_finishes_queued_jobs() {
    let (addr, handle) = start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let pgm = ilt_field::pgm_bytes(&tiny_target(), 0.0, 1.0);

    let (status, _, _) = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(status, 202);

    // Start the drain, then verify the already-submitted job completed:
    // run() only returns once the queue is empty and workers exited.
    let (status, _, body) = post(addr, "/v1/shutdown", b"");
    assert_eq!(status, 202);
    assert!(body_text(&body).contains("draining"));
    handle.join().expect("server thread").expect("clean drain");
}
