//! Job-lifecycle concurrency suite: cancellation (queued, running, racing
//! completion), state-log compaction across a restart, keep-alive
//! connection limits, streaming progress, and malformed-HTTP robustness —
//! all over real loopback sockets via the shared `util` harness.

use ilt_server::harness as util;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ilt_server::{ExecPolicy, ServerConfig, SNAPSHOT_FILE};
use util::{delete, get, post, shutdown, start, tiny_pgm, wait_for_state, Conn, FAST_JOB};

/// A policy that accepts `inject=` so tests can stall tiles on demand.
fn chaos_policy() -> ExecPolicy {
    ExecPolicy { allow_inject: true, ..ExecPolicy::default() }
}

#[test]
fn cancelling_a_queued_job_is_immediate_and_counted() {
    // No workers: the job can never start, so DELETE must kill it cold.
    let (addr, handle) = start(ServerConfig { workers: 0, ..ServerConfig::default() });
    let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &tiny_pgm());
    assert_eq!(reply.status, 202, "{}", reply.text());

    let reply = delete(addr, "/v1/jobs/0");
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert!(reply.text().contains("\"state\":\"cancelled\""), "{}", reply.text());

    let reply = get(addr, "/v1/jobs/0");
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("\"state\":\"cancelled\""), "{}", reply.text());
    // A cancelled job never produced a mask.
    assert_eq!(get(addr, "/v1/jobs/0/mask").status, 409);

    // Cancel is not idempotent-silent: a second DELETE names the state.
    let reply = delete(addr, "/v1/jobs/0");
    assert_eq!(reply.status, 409, "{}", reply.text());
    assert_eq!(delete(addr, "/v1/jobs/999").status, 404);
    assert_eq!(delete(addr, "/v1/jobs/notanumber").status, 400);

    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_jobs_cancelled_total 1\n"), "{text}");
    assert!(text.contains("ilt_queue_depth{class=\"normal\"} 0\n"), "{text}");

    shutdown(addr, handle);
}

#[test]
fn cancelling_a_running_job_stops_at_a_tile_boundary() {
    let journal = util::temp_dir("cancel_journal").with_extension("jsonl");
    let _ = std::fs::remove_file(&journal);
    let (addr, handle) = start(ServerConfig {
        workers: 1,
        policy: chaos_policy(),
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });

    // 64px target over 16px cores = 16 tile jobs; the first three each
    // stall 300ms, leaving a ~900ms window to cancel mid-run.
    let submit = format!(
        "/v1/jobs?{FAST_JOB}&tile=32&halo=8&threads=1\
         &inject=delay@0=300,delay@1=300,delay@2=300"
    );
    let reply = post(addr, &submit, &tiny_pgm());
    assert_eq!(reply.status, 202, "{}", reply.text());

    // Streaming progress: a running job reports its plan and tile counter.
    let detail = wait_for_state(addr, 0, "running");
    assert!(detail.contains("\"tiles_planned\":16"), "{detail}");
    assert!(detail.contains("\"tiles_done\":"), "{detail}");

    let reply = delete(addr, "/v1/jobs/0");
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert!(reply.text().contains("\"state\":\"cancelling\""), "{}", reply.text());

    // The worker observes the token at the next tile boundary and lands
    // the job in `cancelled` — without running all 16 delayed tiles.
    let landed = Instant::now();
    wait_for_state(addr, 0, "cancelled");
    assert!(
        landed.elapsed() < Duration::from_secs(10),
        "cancellation should not wait for the whole run"
    );
    assert_eq!(get(addr, "/v1/jobs/0/mask").status, 409);

    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_jobs_cancelled_total 1\n"), "{text}");
    assert!(text.contains("ilt_jobs_completed_total 0\n"), "{text}");
    assert!(text.contains("ilt_jobs_failed_total 0\n"), "{text}");

    shutdown(addr, handle);

    // The drain flushed the journal: the run is recorded with cancelled
    // tile jobs, the same observability spine as done/failed runs.
    let journal_text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(journal_text.contains("\"status\":\"cancelled\""), "{journal_text}");
    let _ = std::fs::remove_file(&journal);
}

/// Races DELETE against completion over a live worker pool: every response
/// must be a clean 202/409 (never 5xx, never a hang), every job must land
/// in a terminal state, and a restart must replay the exact outcome —
/// masks byte-identical for the jobs that finished.
#[test]
fn cancel_vs_complete_races_stay_clean_across_restart() {
    const JOBS: usize = 8;
    let state_dir = util::temp_dir("race_state");
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });

    let pgm = tiny_pgm();
    for i in 0..JOBS {
        let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}&name=race{i}"), &pgm);
        assert_eq!(reply.status, 202, "{}", reply.text());
    }

    // Cancel every job from another thread while the pool chews through
    // them; some DELETEs will win, some will lose to completion.
    let canceller = std::thread::spawn(move || {
        let mut statuses = Vec::new();
        for id in 0..JOBS {
            statuses.push(delete(addr, &format!("/v1/jobs/{id}")).status);
            std::thread::sleep(Duration::from_millis(20));
        }
        statuses
    });

    let mut states = vec![String::new(); JOBS];
    for (id, state) in states.iter_mut().enumerate() {
        let (landed, text) = util::wait_for_terminal(addr, id);
        assert_ne!(landed, "failed", "{text}");
        *state = format!("\"state\":\"{landed}\"");
    }
    for status in canceller.join().expect("canceller thread") {
        assert!(
            status == 202 || status == 409,
            "cancel during the race must answer 202 or 409, got {status}"
        );
    }

    // Snapshot the outcome, restart, and demand an identical replay.
    let masks: Vec<Option<Vec<u8>>> = (0..JOBS)
        .map(|id| {
            let reply = get(addr, &format!("/v1/jobs/{id}/mask"));
            (reply.status == 200).then_some(reply.body)
        })
        .collect();
    shutdown(addr, handle);

    let (addr, handle) = start(ServerConfig {
        workers: 2,
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    });
    for id in 0..JOBS {
        let text = get(addr, &format!("/v1/jobs/{id}")).text();
        assert!(text.contains(&states[id]), "job {id} changed state across restart: {text}");
        let reply = get(addr, &format!("/v1/jobs/{id}/mask"));
        match &masks[id] {
            Some(mask) => {
                assert_eq!(reply.status, 200);
                assert_eq!(&reply.body, mask, "job {id} mask differs after restart");
            }
            None => assert_eq!(reply.status, 409, "job {id} grew a mask after restart"),
        }
    }
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn compaction_truncates_the_log_and_restart_replays_the_live_set() {
    let state_dir = util::temp_dir("compact_state");
    let config = || ServerConfig {
        workers: 1,
        policy: chaos_policy(),
        state_dir: Some(state_dir.clone()),
        // Any nonzero log triggers compaction at the next terminal event.
        compact_state_bytes: 1,
        ..ServerConfig::default()
    };
    let (addr, handle) = start(config());
    let pgm = tiny_pgm();

    // Job 0 stalls 600ms on its single tile, pinning the one worker so
    // jobs 1 and 2 stay queued; cancelling 2 is then deterministic.
    let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}&inject=delay@0=600"), &pgm);
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert_eq!(post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm).status, 202);
    assert_eq!(post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm).status, 202);
    let reply = delete(addr, "/v1/jobs/2");
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert!(reply.text().contains("\"state\":\"cancelled\""), "{}", reply.text());

    wait_for_state(addr, 0, "done");
    wait_for_state(addr, 1, "done");
    let mask0 = get(addr, "/v1/jobs/0/mask").body;
    let mask1 = get(addr, "/v1/jobs/1/mask").body;

    // Every terminal event compacted: the snapshot holds the live set and
    // the log has been truncated. The final compaction races the last
    // detail poll by a hair, so give the files a moment to settle.
    let snapshot_path = state_dir.join(SNAPSHOT_FILE);
    let log_path = state_dir.join("state.jsonl");
    let settle = Instant::now() + Duration::from_secs(5);
    let snapshot = loop {
        let log_len = std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(u64::MAX);
        if log_len == 0 {
            if let Ok(s) = std::fs::read_to_string(&snapshot_path) {
                break s;
            }
        }
        assert!(Instant::now() < settle, "state log never compacted ({log_len} bytes)");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(snapshot.starts_with("{\"kind\":\"compact\",\"next_id\":3}\n"), "{snapshot}");
    assert!(snapshot.contains("\"id\":0"), "{snapshot}");
    assert!(snapshot.contains("\"id\":1"), "{snapshot}");
    assert!(!snapshot.contains("\"id\":2"), "cancelled jobs must be dropped: {snapshot}");

    shutdown(addr, handle);

    // Restart replays the snapshot: the two finished jobs come back with
    // byte-identical masks, the cancelled id is gone, and new ids keep
    // counting past the compaction floor (no recycling).
    let (addr, handle) = start(config());
    assert!(get(addr, "/v1/jobs/0").text().contains("\"state\":\"done\""));
    assert!(get(addr, "/v1/jobs/1").text().contains("\"state\":\"done\""));
    assert_eq!(get(addr, "/v1/jobs/0/mask").body, mask0, "mask 0 differs after compaction");
    assert_eq!(get(addr, "/v1/jobs/1/mask").body, mask1, "mask 1 differs after compaction");
    assert_eq!(get(addr, "/v1/jobs/2").status, 404, "compacted-away job must 404");
    let text = get(addr, "/metrics").text();
    assert!(text.contains("ilt_jobs_recovered_total 2\n"), "{text}");

    let reply = post(addr, &format!("/v1/jobs?{FAST_JOB}"), &pgm);
    assert_eq!(reply.status, 202);
    assert!(reply.text().contains("\"id\":3"), "{}", reply.text());

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn a_keep_alive_connection_serves_the_request_cap_then_closes() {
    const CAP: usize = 12;
    let (addr, handle) = start(ServerConfig {
        workers: 0,
        keep_alive_requests: CAP,
        ..ServerConfig::default()
    });

    let mut conn = Conn::open(addr);
    for served in 1..=CAP {
        let reply = conn.request("GET", "/healthz", b"").expect("keep-alive request");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), "ok\n");
        let want = if served < CAP { "keep-alive" } else { "close" };
        assert_eq!(reply.header("connection"), Some(want), "request {served}/{CAP}");
    }
    assert!(conn.expect_closed(), "server must close at the request cap");

    shutdown(addr, handle);
}

#[test]
fn an_idle_keep_alive_connection_is_closed_at_the_idle_timeout() {
    let (addr, handle) = start(ServerConfig {
        workers: 0,
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });

    let mut conn = Conn::open(addr);
    let reply = conn.request("GET", "/healthz", b"").expect("first request");
    assert_eq!(reply.header("connection"), Some("keep-alive"));

    // Sit idle; the server must hang up on its own, promptly.
    let waited = Instant::now();
    assert!(conn.expect_closed(), "server should close an idle connection");
    let elapsed = waited.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100) && elapsed < Duration::from_secs(5),
        "idle close took {elapsed:?}, expected ~300ms"
    );

    shutdown(addr, handle);
}

#[test]
fn pipelined_requests_are_served_in_order_on_one_connection() {
    let (addr, handle) = start(ServerConfig { workers: 0, ..ServerConfig::default() });

    let mut conn = Conn::open(addr);
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
          GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n\
          GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n",
    )
    .expect("pipeline burst");
    let first = conn.read_reply().expect("reply 1");
    assert_eq!((first.status, first.text().as_str()), (200, "ok\n"));
    let second = conn.read_reply().expect("reply 2");
    assert_eq!(second.status, 200);
    assert!(second.text().contains("ilt_jobs_accepted_total"), "{}", second.text());
    let third = conn.read_reply().expect("reply 3");
    assert_eq!((third.status, third.text().as_str()), (200, "ok\n"));

    shutdown(addr, handle);
}

/// Satellite: hostile/broken clients. Every case must end in a clean 4xx
/// or a silent drop — never a panic, and never a wedged handler that
/// would block the drain at the end of the test.
#[test]
fn malformed_http_gets_clean_errors_and_never_wedges_the_server() {
    let (addr, handle) = start(ServerConfig { workers: 0, ..ServerConfig::default() });

    // Premature close mid-head.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /hea").unwrap();
    drop(s);

    // Premature close mid-body (Content-Length promises more than sent).
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort").unwrap();
    drop(s);

    // Pipelined garbage after a valid request: the first is answered, the
    // garbage gets a 400 and the connection is dropped.
    let mut conn = Conn::open(addr);
    conn.send_raw(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\nNOT_A_REQUEST\r\n\r\n").unwrap();
    let reply = conn.read_reply().expect("valid half of the pipeline");
    assert_eq!(reply.status, 200);
    let reply = conn.read_reply().expect("garbage half still gets an answer");
    assert_eq!(reply.status, 400);
    assert!(conn.expect_closed(), "connection must drop after a parse error");

    // A bodied POST with no Content-Length: the head parses (empty body →
    // 400, no source), then the stray body bytes fail as a next request.
    let mut conn = Conn::open(addr);
    conn.send_raw(b"POST /v1/jobs HTTP/1.1\r\nhost: t\r\n\r\nP5 stray body\r\n\r\n").unwrap();
    let reply = conn.read_reply().expect("head without content-length");
    assert_eq!(reply.status, 400, "{}", reply.text());
    let reply = conn.read_reply().expect("stray body parsed as garbage");
    assert_eq!(reply.status, 400);
    assert!(conn.expect_closed());

    // Huge Content-Length: refused from the declaration alone.
    let reply = util::exchange(addr, b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 1099511627776\r\n\r\n");
    assert_eq!(reply.status, 413);

    // Oversized header block against the default limits.
    let mut raw = b"GET /healthz HTTP/1.1\r\nx-pad: ".to_vec();
    raw.extend(std::iter::repeat(b'a').take(1 << 20));
    raw.extend_from_slice(b"\r\n\r\n");
    let reply = util::exchange(addr, &raw);
    assert_eq!(reply.status, 431);

    // The server is still healthy and drains cleanly: no leaked handler
    // is holding it open.
    assert_eq!(get(addr, "/healthz").status, 200);
    shutdown(addr, handle);
}
