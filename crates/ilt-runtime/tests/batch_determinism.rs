//! End-to-end batch properties: thread-count invariance and failure
//! resilience, exercised through `run_batch` exactly as the CLI drives it.

use ilt_core::Stage;
use ilt_layouts::iccad2013_case;
use ilt_optics::OpticsConfig;
use ilt_runtime::{
    field_hash, run_batch, BatchCase, BatchConfig, FaultKind, FaultPlan, FaultSpec, SeamPolicy,
    SimulatorCache,
};

fn m1_case(id: usize, grid: usize) -> BatchCase {
    let layout = iccad2013_case(id);
    BatchCase {
        name: format!("m1_case{id}"),
        target: layout.rasterize(grid),
        nm_per_px: layout.nm_per_px(grid),
    }
}

fn config(threads: usize) -> BatchConfig {
    BatchConfig {
        threads,
        tile: 64,
        halo: 8,
        optics: OpticsConfig { num_kernels: 4, ..OpticsConfig::default() },
        schedule: vec![Stage::low_res(2, 4), Stage::high_res(1, 3)],
        evaluate_stitched: false,
        ..BatchConfig::default()
    }
}

/// One tiled M1 clip, run single- and dual-threaded: every deterministic
/// journal field and every output mask bit must match.
#[test]
fn two_threads_match_one_thread_bit_for_bit() {
    let run = |threads: usize| {
        let cache = SimulatorCache::new();
        let cases = [m1_case(1, 128)];
        run_batch(&cases, &config(threads), &cache).expect("batch runs")
    };
    let serial = run(1);
    let parallel = run(2);

    assert_eq!(serial.report.digest(), parallel.report.digest());
    assert_eq!(serial.cases.len(), parallel.cases.len());
    for (a, b) in serial.cases.iter().zip(&parallel.cases) {
        assert_eq!(
            field_hash(&a.mask),
            field_hash(&b.mask),
            "stitched mask for {} differs across thread counts",
            a.name
        );
    }
    // Journals agree line-for-line once the trailing timing fields go.
    let strip = |jsonl: String| -> Vec<String> {
        jsonl
            .lines()
            .map(|l| l.split("\"sim_ms\"").next().unwrap().to_string())
            .filter(|l| !l.contains("\"kind\":\"summary\""))
            .collect()
    };
    assert_eq!(strip(serial.report.to_jsonl()), strip(parallel.report.to_jsonl()));
}

/// Blend stitching must also be thread-count invariant (the accumulation
/// order is fixed by the stitcher, not by job completion order).
#[test]
fn blend_stitch_is_thread_count_invariant() {
    let run = |threads: usize| {
        let cache = SimulatorCache::new();
        let mut cfg = config(threads);
        cfg.seam = SeamPolicy::Blend { band: 4 };
        let cases = [m1_case(2, 128)];
        run_batch(&cases, &cfg, &cache).expect("batch runs")
    };
    assert_eq!(
        field_hash(&run(1).cases[0].mask),
        field_hash(&run(2).cases[0].mask)
    );
}

/// An injected panic consumes a retry, the job still completes, and the
/// journal records the extra attempt.
#[test]
fn injected_failure_is_retried_and_journaled() {
    let cache = SimulatorCache::new();
    let mut cfg = config(2);
    cfg.max_retries = 1;
    // First attempt of job 0 panics.
    cfg.faults = FaultPlan::none().with(FaultSpec::at(0, 1, FaultKind::Panic));
    let out = run_batch(&[m1_case(1, 128)], &cfg, &cache).expect("batch runs");

    assert_eq!(out.report.failed_jobs(), 0, "the retry must rescue the job");
    assert_eq!(out.report.total_retries(), 1);
    let rescued = &out.report.records[0];
    assert_eq!(rescued.attempts, 2);
    assert!(rescued.status.is_done());
    assert!(out.report.to_jsonl().contains("\"attempts\":2"));
    assert_eq!(out.cases[0].failed_tiles, 0);
}

/// A job that exhausts retries degrades its core to the target geometry
/// while the rest of the batch completes normally.
#[test]
fn exhausted_retries_degrade_only_the_failed_core() {
    let cache = SimulatorCache::new();
    let mut cfg = config(2);
    cfg.max_retries = 0;
    // Every attempt panics, the degraded fallback included: a true failure.
    cfg.faults = FaultPlan::none().with(FaultSpec::always(0, FaultKind::Panic));
    let case = m1_case(1, 128);
    let out = run_batch(&[case.clone()], &cfg, &cache).expect("batch runs");

    assert_eq!(out.report.failed_jobs(), 1);
    assert_eq!(out.cases[0].failed_tiles, 1);
    // The failed tile (grid position 0,0) keeps the target geometry in its
    // core; pick a healthy job's core pixel and check it was optimized.
    let binary = case.target.threshold(0.5);
    let spec0 = ilt_runtime::TileGrid::new(128, 64, 8)
        .unwrap()
        .specs()
        .into_iter()
        .next()
        .unwrap();
    for r in spec0.core_r0..spec0.core_r0 + spec0.core_rows {
        for c in spec0.core_c0..spec0.core_c0 + spec0.core_cols {
            assert_eq!(out.cases[0].mask[(r, c)], binary[(r, c)]);
        }
    }
    // Every other job still completed normally.
    assert!(out.report.records[1..].iter().all(|r| r.status.is_done()));
}

/// The whole-clip path (target <= tile) and the shared cache interact
/// correctly when sizes are mixed in one batch.
#[test]
fn mixed_sizes_share_the_cache_per_grid() {
    let cache = SimulatorCache::new();
    let cases = [m1_case(1, 64), m1_case(2, 128), m1_case(3, 128)];
    let out = run_batch(&cases, &config(2), &cache).expect("batch runs");
    // Two distinct configurations: the 64-px whole clip images at 32 nm/px
    // while the 64-px tile windows of the 128-px rasters image at 16 nm/px.
    // All 18 tile jobs of both tiled cases share one simulator build.
    assert_eq!(cache.len(), 2);
    assert_eq!(out.report.records.len(), 1 + 9 + 9);
    assert_eq!(out.report.failed_jobs(), 0);
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 17);
}

#[test]
fn journal_has_one_line_per_job_plus_summary() {
    let cache = SimulatorCache::new();
    let out = run_batch(&[m1_case(1, 128)], &config(1), &cache).expect("batch runs");
    let jsonl = out.report.to_jsonl();
    assert_eq!(jsonl.lines().count(), out.report.records.len() + 1);
    for (i, line) in jsonl.lines().take(out.report.records.len()).enumerate() {
        assert!(line.starts_with(&format!("{{\"job_id\":{i},")), "line {i}: {line}");
    }
}

/// Whole-clip batch output equals a direct `MultiLevelIlt` run: the engine
/// adds orchestration, not numerics.
#[test]
fn whole_clip_batch_matches_direct_optimizer() {
    use ilt_core::{IltConfig, MultiLevelIlt};
    let cache = SimulatorCache::new();
    let case = m1_case(4, 64);
    let cfg = config(1);
    let out = run_batch(&[case.clone()], &cfg, &cache).expect("batch runs");

    let sim = cache
        .get_or_build(&OpticsConfig {
            grid: 64,
            nm_per_px: case.nm_per_px,
            num_kernels: 4,
            ..OpticsConfig::default()
        })
        .unwrap();
    // The engine clamps the schedule to the job grid; mirror that here.
    let schedule = ilt_core::schedules::clamp_scales(
        &ilt_core::schedules::clamp_effective_pitch(&cfg.schedule, case.nm_per_px, cfg.max_eff_nm),
        64,
        32.max(sim.config().kernel_size().next_power_of_two()),
    );
    let direct = MultiLevelIlt::new(sim, IltConfig::default()).run(&case.target, &schedule);
    assert_eq!(field_hash(&out.cases[0].mask), field_hash(&direct.mask));
}

#[test]
fn report_table_renders() {
    let cache = SimulatorCache::new();
    let out = run_batch(&[m1_case(1, 64)], &config(1), &cache).expect("batch runs");
    let table = out.report.to_string();
    assert!(table.contains("m1_case1"));
    assert!(table.contains("speedup"));
}
