//! Seeded fuzz for the checkpoint WAL loader's damage tolerance.
//!
//! The durability contract (see `checkpoint.rs`): a crash can only tear the
//! *trailing* line of the WAL, so the loader drops exactly one torn tail and
//! treats damage anywhere else as corruption. These tests drive that
//! boundary with `Xorshift64Star`-seeded truncations and byte corruptions at
//! arbitrary offsets — every failure replays exactly from its seed.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use ilt_layouts::Xorshift64Star;
use ilt_runtime::{
    load_wal, CheckpointSink, FaultPlan, JobMetrics, JobRecord, JobStatus, StageTimes, WAL_FILE,
};

fn record(id: usize) -> JobRecord {
    let status = match id % 3 {
        0 => JobStatus::Done,
        1 => JobStatus::Degraded(format!("numeric: NaN in tile {id}")),
        _ => JobStatus::Failed(format!("panic: injected \"quoted\" failure {id}")),
    };
    JobRecord {
        job_id: id,
        // No `}` outside the escaped-string machinery: a mid-line cut must
        // never leave a coincidentally parseable prefix.
        case: format!("fuzz_case_{id}"),
        tile: (id % 2 == 0).then_some((id, id + 1)),
        grid: 128,
        attempts: 1 + (id as u32 % 3),
        status: status.clone(),
        metrics: status.has_mask().then_some(JobMetrics {
            l2_nm2: 1000.5 + id as f64,
            pvband_nm2: 200.25,
            epe_violations: id,
            shots: 40 + id,
            iterations: 12,
            mask_hash: 0xdead_beef_0000_0000 | id as u64,
        }),
        times: StageTimes { sim_ms: 1.0, optimize_ms: 2.0, evaluate_ms: 3.0 },
        wall_ms: 6.5,
    }
}

/// Writes a healthy WAL of `jobs` records and returns its path + raw bytes.
fn build_wal(dir: &Path, jobs: usize) -> (PathBuf, Vec<u8>) {
    let _ = fs::remove_dir_all(dir);
    let sink = CheckpointSink::create(dir, 0xf00d, jobs, false, FaultPlan::none()).unwrap();
    drop(sink);
    let path = dir.join(WAL_FILE);
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    for id in 0..jobs {
        writeln!(f, "{}", record(id).to_json_wal((id % 3 == 0).then_some("job-x.pgm"))).unwrap();
    }
    drop(f);
    let bytes = fs::read(&path).unwrap();
    (path, bytes)
}

/// Byte spans of each line, excluding its `\n`: `(start, end)` per line.
fn line_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            spans.push((start, i));
            start = i + 1;
        }
    }
    if start < bytes.len() {
        spans.push((start, bytes.len()));
    }
    spans
}

#[test]
fn truncation_at_any_offset_is_tolerated_as_one_torn_tail() {
    let dir = std::env::temp_dir().join(format!("ilt-wal-fuzz-trunc-{}", std::process::id()));
    let jobs = 6;
    let (path, healthy) = build_wal(&dir, jobs);
    let spans = line_spans(&healthy);
    let header_end = spans[0].1;
    let mut rng = Xorshift64Star::new(0xfeed_face);
    let mut saw_torn = false;
    let mut saw_clean = false;
    for round in 0..200 {
        // Any offset from "mid-header" to "nothing lost".
        let cut = (rng.next_u64() as usize) % healthy.len() + 1;
        fs::write(&path, &healthy[..cut]).unwrap();
        if cut <= header_end {
            // The cut landed inside (or right at the end of) the header
            // line: the loader either rejects the damaged header or sees a
            // complete header with zero records — never a phantom record.
            if let Ok(run) = load_wal(&dir) {
                assert!(run.records.is_empty(), "round {round}: cut {cut} inside the header");
            }
            continue;
        }
        let run = load_wal(&dir)
            .unwrap_or_else(|e| panic!("round {round}: cut {cut} must be tolerated: {e}"));
        // Exactly the records whose full line survived the cut are loaded;
        // the cut line — and only it — is dropped as the torn tail.
        let intact: Vec<usize> =
            spans[1..].iter().enumerate().filter(|(_, s)| s.1 <= cut).map(|(i, _)| i).collect();
        assert_eq!(
            run.records.keys().copied().collect::<Vec<_>>(),
            intact,
            "round {round}: cut {cut}"
        );
        for (id, loaded) in &run.records {
            assert_eq!(loaded.record, record(*id), "round {round}: survivor {id} is bit-exact");
        }
        if run.dropped_trailing {
            saw_torn = true;
        } else {
            saw_clean = true;
        }
    }
    assert!(saw_torn && saw_clean, "200 seeded cuts must cover both boundary shapes");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corruption_before_the_tail_is_a_hard_error() {
    let dir = std::env::temp_dir().join(format!("ilt-wal-fuzz-corrupt-{}", std::process::id()));
    let jobs = 6;
    let (path, healthy) = build_wal(&dir, jobs);
    let spans = line_spans(&healthy);
    let mut rng = Xorshift64Star::new(0xc0ffee);
    for round in 0..100 {
        // Pick a record line that is NOT the last, and break a structural
        // byte in it (the `:` after "job_id" can never appear this early
        // inside a string value, so the line stops parsing).
        let victim = 1 + (rng.next_u64() as usize) % (spans.len() - 2);
        let (start, end) = spans[victim];
        let line = &healthy[start..end];
        let colon = start + line.iter().position(|&b| b == b':').unwrap();
        let mut damaged = healthy.clone();
        damaged[colon] = b';';
        fs::write(&path, &damaged).unwrap();
        let err = load_wal(&dir).expect_err("mid-file corruption must not be tolerated");
        assert!(err.contains("corrupt"), "round {round}: {err}");
    }
    // The same damage on the *last* line is crash-shaped and tolerated.
    let (start, end) = *spans.last().unwrap();
    let line = &healthy[start..end];
    let colon = start + line.iter().position(|&b| b == b':').unwrap();
    let mut damaged = healthy.clone();
    damaged[colon] = b';';
    fs::write(&path, &damaged).unwrap();
    let run = load_wal(&dir).expect("a damaged trailing line is dropped, not fatal");
    assert!(run.dropped_trailing);
    assert_eq!(run.records.len(), jobs - 1);
    let _ = fs::remove_dir_all(&dir);
}
