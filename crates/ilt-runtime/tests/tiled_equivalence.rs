//! Tiled-vs-untiled physics: stitching must not corrupt interior pixels.
//!
//! A tile window simulates at its own grid size, so its DFT samples the
//! pupil on a coarser frequency lattice than the full field and wraps the
//! SOCS kernel tails at a shorter period. Both effects decay with distance
//! from the window border; measured on this stack, the interior disagreement
//! bottoms out near 2e-5 once the guard band reaches ~3.5 lambda/NA
//! (halo * nm_per_px >= ~500 nm). The assertions below pin that behavior:
//! errors shrink monotonically with the halo and stay under a bound with a
//! few-x margin over the measured floor.

use ilt_field::Field2D;
use ilt_optics::{LithoSimulator, OpticsConfig};
use ilt_runtime::{SeamPolicy, TileGrid};

const N: usize = 256;
const NM: f64 = 16.0;

fn bar_target() -> Field2D {
    // A horizontal bar crossing several tiles, centered mid-field so its
    // body sits far from every core seam.
    Field2D::from_fn(N, N, |r, c| {
        if (N / 2 - 8..N / 2 + 8).contains(&r) && (N / 5..N - N / 5).contains(&c) {
            1.0
        } else {
            0.0
        }
    })
}

fn optics(grid: usize) -> OpticsConfig {
    OpticsConfig { grid, nm_per_px: NM, num_kernels: 8, ..OpticsConfig::default() }
}

/// Max |tiled - untiled| over pixels at least `margin` px from every core
/// seam and from the field border.
fn interior_error(halo: usize, margin: usize) -> f64 {
    let full = LithoSimulator::new(optics(N)).expect("full-field simulator");
    let untiled = full.aerial(&bar_target(), false);

    let grid = TileGrid::new(N, 128, halo).expect("valid tiling");
    let tsim = LithoSimulator::new(optics(128)).expect("tile simulator");
    let target = bar_target();
    let tiles: Vec<Option<Field2D>> = grid
        .specs()
        .iter()
        .map(|s| Some(tsim.aerial(&grid.extract(&target, s), false)))
        .collect();
    let stitched = grid.stitch(&tiles, SeamPolicy::Crop, &Field2D::zeros(N, N));

    let core = grid.core();
    let seam_distance = |x: usize| {
        let mut best = x.min(N - 1 - x);
        let mut seam = core;
        while seam < N {
            best = best.min(x.abs_diff(seam));
            seam += core;
        }
        best
    };
    let mut worst = 0.0f64;
    let mut checked = 0usize;
    for r in 0..N {
        for c in 0..N {
            if seam_distance(r) >= margin && seam_distance(c) >= margin {
                worst = worst.max((stitched[(r, c)] - untiled[(r, c)]).abs());
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "empty interior: margin {margin} too large for core {core}");
    worst
}

#[test]
fn tiled_aerial_matches_untiled_in_the_interior() {
    // halo = 32 px * 16 nm = 512 nm ~ 3.6 lambda/NA. Measured: ~2.4e-5.
    let err = interior_error(32, 32);
    assert!(err < 1e-4, "interior disagreement {err:.3e} exceeds bound");
}

#[test]
fn interior_error_shrinks_as_the_halo_grows() {
    let coarse = interior_error(8, 8);
    let fine = interior_error(32, 32);
    assert!(
        fine < coarse / 10.0,
        "halo growth must pay off: halo8 -> {coarse:.3e}, halo32 -> {fine:.3e}"
    );
}

#[test]
fn stitch_of_consistent_tiles_is_bit_exact() {
    // Stitching windows cut from one source must reproduce it exactly —
    // this isolates the tiling bookkeeping from the physics above.
    let src = Field2D::from_fn(N, N, |r, c| ((r * 31 + c * 17) % 97) as f64 * 0.01);
    let grid = TileGrid::new(N, 128, 32).expect("valid tiling");
    let tiles: Vec<Option<Field2D>> =
        grid.specs().iter().map(|s| Some(grid.extract(&src, s))).collect();
    let out = grid.stitch(&tiles, SeamPolicy::Crop, &Field2D::zeros(N, N));
    assert_eq!(out, src);
}
