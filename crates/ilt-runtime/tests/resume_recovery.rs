//! Crash-safe checkpoint/resume, end to end: a run that loses jobs to
//! injected faults (or to WAL damage) must, after resume, produce masks and
//! a timing-stripped journal byte-identical to an uninterrupted run.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use ilt_core::Stage;
use ilt_field::Field2D;
use ilt_optics::OpticsConfig;
use ilt_runtime::{
    field_hash, load_wal, run_batch, run_batch_resume, BatchCase, BatchConfig, FaultKind,
    FaultPlan, FaultSpec, JobStatus, SimulatorCache, WAL_FILE,
};

fn bar_case(name: &str, n: usize) -> BatchCase {
    let target = Field2D::from_fn(n, n, |r, c| {
        if (n / 4..n / 2).contains(&r) && (n / 8..n - n / 8).contains(&c) { 1.0 } else { 0.0 }
    });
    BatchCase { name: name.into(), target, nm_per_px: 8.0 }
}

/// 128-px case over 64-px tiles with an 8-px halo: 3x3 = 9 jobs.
fn tiled_config() -> BatchConfig {
    BatchConfig {
        threads: 2,
        tile: 64,
        halo: 8,
        optics: OpticsConfig { num_kernels: 3, ..OpticsConfig::default() },
        schedule: vec![Stage::low_res(2, 3), Stage::high_res(1, 2)],
        evaluate_stitched: false,
        ..BatchConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ilt-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn resume_after_faulted_run_is_byte_identical_to_uninterrupted() {
    let cases = [bar_case("m1", 128)];

    // Reference: one uninterrupted, checkpointed run.
    let ref_dir = temp_dir("ref");
    let mut ref_cfg = tiled_config();
    ref_cfg.checkpoint = Some(ref_dir.clone());
    let reference = run_batch(&cases, &ref_cfg, &SimulatorCache::new()).unwrap();
    assert_eq!(reference.report.failed_jobs(), 0);

    // Crashed run: job 4 fails every attempt (fallback included), so the
    // WAL records a failure for it — exactly the state a mid-run kill plus
    // a persistent defect leaves behind.
    let dir = temp_dir("crashed");
    let mut faulted = tiled_config();
    faulted.checkpoint = Some(dir.clone());
    faulted.max_retries = 0;
    faulted.faults = FaultPlan::none().with(FaultSpec::always(4, FaultKind::Panic));
    let crashed = run_batch(&cases, &faulted, &SimulatorCache::new()).unwrap();
    assert_eq!(crashed.report.failed_jobs(), 1);

    // Resume with the fault gone (the "fixed" re-invocation).
    let mut resume_cfg = tiled_config();
    resume_cfg.checkpoint = Some(dir.clone());
    resume_cfg.max_retries = 0;
    let resumed = run_batch_resume(&cases, &resume_cfg, &SimulatorCache::new(), true).unwrap();

    assert_eq!(resumed.restored_jobs, 8, "8 durable successes skip re-running");
    assert_eq!(resumed.report.failed_jobs(), 0);
    assert_eq!(
        resumed.report.to_jsonl_opts(false),
        reference.report.to_jsonl_opts(false),
        "timing-stripped journals must be byte-identical"
    );
    assert_eq!(
        field_hash(&resumed.cases[0].mask),
        field_hash(&reference.cases[0].mask),
        "stitched masks must be bit-identical"
    );

    // The WAL now holds duplicate records for job 4 (failed, then done);
    // replay resolves them last-wins.
    let wal = load_wal(&dir).unwrap();
    assert_eq!(wal.records.len(), 9);
    assert!(wal.records[&4].record.status.is_done(), "last record wins");
    let raw = fs::read_to_string(dir.join(WAL_FILE)).unwrap();
    let job4_lines = raw.lines().filter(|l| l.contains("\"job_id\":4,")).count();
    assert_eq!(job4_lines, 2, "failure and the resumed success both remain in the log");

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_trailing_wal_line_reruns_only_the_torn_job() {
    let cases = [bar_case("m1", 128)];
    let dir = temp_dir("torn");
    let mut cfg = tiled_config();
    cfg.checkpoint = Some(dir.clone());
    let full = run_batch(&cases, &cfg, &SimulatorCache::new()).unwrap();

    // Tear the WAL mid-append: chop the final record line in half, exactly
    // what a crash during a write leaves behind.
    let wal_path = dir.join(WAL_FILE);
    let raw = fs::read_to_string(&wal_path).unwrap();
    let lines: Vec<&str> = raw.lines().collect();
    let last = lines.last().unwrap();
    let torn: String = lines[..lines.len() - 1].join("\n") + "\n" + &last[..last.len() / 2];
    fs::write(&wal_path, torn).unwrap();

    let loaded = load_wal(&dir).unwrap();
    assert!(loaded.dropped_trailing);
    assert_eq!(loaded.records.len(), 8);

    let resumed = run_batch_resume(&cases, &cfg, &SimulatorCache::new(), true).unwrap();
    assert_eq!(resumed.restored_jobs, 8, "only the torn job re-runs");
    assert_eq!(
        resumed.report.to_jsonl_opts(false),
        full.report.to_jsonl_opts(false)
    );
    assert_eq!(field_hash(&resumed.cases[0].mask), field_hash(&full.cases[0].mask));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_mismatch_rejects_the_resume() {
    let cases = [bar_case("m1", 128)];
    let dir = temp_dir("fpr");
    let mut cfg = tiled_config();
    cfg.checkpoint = Some(dir.clone());
    run_batch(&cases, &cfg, &SimulatorCache::new()).unwrap();

    // Execution-only knobs may change freely...
    let mut more_threads = cfg.clone();
    more_threads.threads = 1;
    more_threads.max_retries = 5;
    assert!(run_batch_resume(&cases, &more_threads, &SimulatorCache::new(), true).is_ok());

    // ...but result-affecting configuration must not.
    let mut different = cfg.clone();
    different.halo = 16;
    let err = run_batch_resume(&cases, &different, &SimulatorCache::new(), true).unwrap_err();
    assert!(err.contains("fingerprint mismatch"), "{err}");

    // Different inputs are rejected too.
    let err = run_batch_resume(&[bar_case("other", 128)], &cfg, &SimulatorCache::new(), true)
        .unwrap_err();
    assert!(err.contains("fingerprint mismatch"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_fault_leaves_the_job_nondurable() {
    let cases = [bar_case("solo", 64)]; // one whole-clip job
    let dir = temp_dir("ckptfault");
    let mut cfg = tiled_config();
    cfg.checkpoint = Some(dir.clone());
    cfg.faults = FaultPlan::none().with(FaultSpec::always(0, FaultKind::CheckpointError));
    let out = run_batch(&cases, &cfg, &SimulatorCache::new()).unwrap();
    assert_eq!(out.report.failed_jobs(), 0, "the job itself succeeds in memory");

    // The WAL records the success but with no durable mask...
    let loaded = load_wal(&dir).unwrap();
    assert!(loaded.records[&0].record.status.is_done());
    assert!(loaded.records[&0].ckpt.is_none());

    // ...so a resume does not trust it and re-runs the job.
    let mut clean = cfg.clone();
    clean.faults = FaultPlan::none();
    let resumed = run_batch_resume(&cases, &clean, &SimulatorCache::new(), true).unwrap();
    assert_eq!(resumed.restored_jobs, 0);
    assert_eq!(resumed.report.failed_jobs(), 0);
    assert_eq!(
        field_hash(&resumed.cases[0].mask),
        field_hash(&out.cases[0].mask)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mask_file_forces_a_rerun() {
    let cases = [bar_case("solo", 64)];
    let dir = temp_dir("badmask");
    let mut cfg = tiled_config();
    cfg.checkpoint = Some(dir.clone());
    let full = run_batch(&cases, &cfg, &SimulatorCache::new()).unwrap();

    // Corrupt the checkpointed mask: flip its body bytes.
    let mask_path = dir.join("job-0.pgm");
    let mut bytes = fs::read(&mask_path).unwrap();
    let n = bytes.len();
    for b in &mut bytes[n - 16..] {
        *b ^= 0xff;
    }
    let mut f = fs::File::create(&mask_path).unwrap();
    f.write_all(&bytes).unwrap();
    drop(f);

    let resumed = run_batch_resume(&cases, &cfg, &SimulatorCache::new(), true).unwrap();
    assert_eq!(resumed.restored_jobs, 0, "hash mismatch disqualifies the checkpoint");
    assert_eq!(field_hash(&resumed.cases[0].mask), field_hash(&full.cases[0].mask));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn chaos_run_with_mixed_faults_still_converges_and_resumes() {
    let cases = [bar_case("m1", 128)];
    let dir = temp_dir("chaos");
    let mut cfg = tiled_config();
    cfg.checkpoint = Some(dir.clone());
    cfg.max_retries = 1;
    // First attempts suffer a panic, a NaN poison, and a transient build
    // error on three different jobs; retries are clean.
    cfg.faults = FaultPlan::none()
        .with(FaultSpec::at(1, 1, FaultKind::Panic))
        .with(FaultSpec::at(3, 1, FaultKind::PoisonNan))
        .with(FaultSpec::at(5, 1, FaultKind::BuildError));
    let out = run_batch(&cases, &cfg, &SimulatorCache::new()).unwrap();
    assert_eq!(out.report.failed_jobs(), 0);
    assert_eq!(out.report.total_retries(), 3);

    // The retried jobs' final results are durable; everything restores.
    let resumed = run_batch_resume(&cases, &cfg, &SimulatorCache::new(), true).unwrap();
    assert_eq!(resumed.restored_jobs, 9);
    // Restored records keep the attempts they took originally.
    assert_eq!(resumed.report.records[1].attempts, 2);
    assert!(resumed.report.records.iter().all(|r| matches!(r.status, JobStatus::Done)));
    let _ = fs::remove_dir_all(&dir);
}
