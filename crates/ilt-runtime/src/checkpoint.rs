//! Crash-safe checkpointing: the run journal as a durable write-ahead log.
//!
//! A checkpointed batch run maintains, next to its eventual journal, a
//! checkpoint directory holding:
//!
//! - `wal.jsonl` — a write-ahead log: one header line carrying a
//!   fingerprint of the run configuration, then one line per *completed*
//!   job (success, degraded, or failed), appended with `fsync` as each job
//!   finishes. Each line is the job's full journal record plus a `"ckpt"`
//!   field naming the durable mask file (`null` when the mask could not be
//!   persisted).
//! - `job-<id>.pgm` — the finished mask of each successful job, written
//!   atomically (temp file + `fsync` + rename, then a directory `fsync`).
//!
//! The invariant: at any instant — including halfway through a `kill -9` —
//! the WAL plus the mask files form a consistent record of progress. A line
//! torn by a crash can only be the *last* line, and the loader drops it;
//! a mask file either exists complete (the rename happened after its data
//! was on disk) or not at all. Resume therefore needs no repair step: it
//! replays the WAL (duplicates last-wins, truncated tail tolerated),
//! verifies each claimed mask against the record's bit-exact hash, and
//! re-runs exactly the jobs without a durable success.
//!
//! The configuration fingerprint guards against resuming with different
//! inputs: it hashes everything that determines job *results* (cases,
//! tiling, optics, recipe) and deliberately excludes execution-only knobs
//! (thread count, timeout, retry budget, fault plan), which may legally
//! differ between the crashed run and its resume.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ilt_field::{parse_pgm, pgm_bytes};

use crate::batch::{BatchCase, BatchConfig};
use crate::fault::FaultPlan;
use crate::journal::{
    field_hash, fnv1a64, JobMetrics, JobRecord, JobStatus, StageTimes,
};
use crate::pool::JobOutput;

/// Name of the write-ahead log inside a checkpoint directory.
pub const WAL_FILE: &str = "wal.jsonl";

/// Fingerprint of everything that determines job results: the cases (name,
/// target bits, pitch) and the result-affecting configuration (tiling, seam
/// policy, optics template, ILT hyper-parameters, schedule, pitch ceiling,
/// stitched evaluation). Excludes threads, timeout, retries, faults, and
/// the checkpoint location itself — those only change *how* the run
/// executes, never what a job computes.
pub fn config_fingerprint(cases: &[BatchCase], config: &BatchConfig) -> u64 {
    let mut s = String::new();
    for case in cases {
        s.push_str(&format!(
            "case:{}:{:016x}:{:?};",
            case.name,
            field_hash(&case.target),
            case.nm_per_px
        ));
    }
    s.push_str(&format!(
        "tile:{};halo:{};seam:{:?};optics:{:?};ilt:{:?};schedule:{:?};max_eff_nm:{:?};eval:{}",
        config.tile,
        config.halo,
        config.seam,
        config.optics,
        config.ilt,
        config.schedule,
        config.max_eff_nm,
        config.evaluate_stitched
    ));
    fnv1a64(s.bytes())
}

/// The durable mask file name for a job.
pub fn mask_file_name(job_id: usize) -> String {
    format!("job-{job_id}.pgm")
}

fn fsync_dir(dir: &Path) {
    // Linux allows fsync on a directory handle; best-effort elsewhere.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` to `dir/name` atomically: temp file, data fsync, rename,
/// directory fsync. After this returns `Ok`, the file survives a crash
/// complete; before the rename, a crash leaves at most a stray `.tmp`.
pub fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dest = dir.join(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &dest)?;
    fsync_dir(dir);
    Ok(())
}

/// The live end of the write-ahead log: workers push each finished job
/// through [`CheckpointSink::persist`], which makes the mask durable, then
/// the WAL line, in that order.
pub struct CheckpointSink {
    dir: PathBuf,
    wal: Mutex<File>,
    faults: FaultPlan,
}

impl CheckpointSink {
    /// Opens (or continues) the WAL in `dir`. A fresh run truncates any
    /// prior WAL and writes the header; a resume appends to the existing
    /// log, whose fingerprint the caller has already verified.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the directory or the log.
    pub fn create(
        dir: &Path,
        fingerprint: u64,
        jobs: usize,
        resume: bool,
        faults: FaultPlan,
    ) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let wal = if resume && wal_path.exists() {
            OpenOptions::new().append(true).open(&wal_path)?
        } else {
            let mut f = File::create(&wal_path)?;
            f.write_all(
                format!(
                    "{{\"kind\":\"run_header\",\"version\":1,\"fingerprint\":\"{fingerprint:016x}\",\"jobs\":{jobs}}}\n"
                )
                .as_bytes(),
            )?;
            f.sync_data()?;
            f
        };
        fsync_dir(dir);
        Ok(Self { dir: dir.to_path_buf(), wal: Mutex::new(wal), faults })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Makes one finished job durable: mask first (atomic file), WAL line
    /// second (fsynced append). Ordering matters — a WAL line claiming a
    /// mask is written only after the mask itself survived. Persistence
    /// failures never fail the job (the result is still good in memory);
    /// they leave `"ckpt":null` so a later resume re-runs the job.
    pub fn persist(&self, output: &JobOutput) {
        let job_id = output.record.job_id;
        let ckpt = match &output.mask {
            Some(mask) if output.record.status.has_mask() => {
                if self.faults.checkpoint_error(job_id) {
                    eprintln!("checkpoint: injected write failure for job {job_id}");
                    None
                } else {
                    let name = mask_file_name(job_id);
                    match write_atomic(&self.dir, &name, &pgm_bytes(mask, 0.0, 1.0)) {
                        Ok(()) => Some(name),
                        Err(e) => {
                            eprintln!("checkpoint: mask write failed for job {job_id}: {e}");
                            None
                        }
                    }
                }
            }
            _ => None,
        };
        let line = output.record.to_json_wal(ckpt.as_deref());
        {
            let mut wal = self.wal.lock().expect("checkpoint WAL lock poisoned");
            let durable = wal
                .write_all(line.as_bytes())
                .and_then(|()| wal.write_all(b"\n"))
                .and_then(|()| wal.sync_data());
            if let Err(e) = durable {
                eprintln!("checkpoint: WAL append failed for job {job_id}: {e}");
            }
        }
        if self.faults.crash_after_checkpoint(job_id) {
            eprintln!("checkpoint: injected process crash after job {job_id} became durable");
            std::process::abort();
        }
    }
}

/// One replayed WAL entry.
#[derive(Clone, Debug)]
pub struct LoadedRecord {
    /// The job's journal record as last written.
    pub record: JobRecord,
    /// Durable mask file name, when the checkpoint write succeeded.
    pub ckpt: Option<String>,
}

/// A replayed write-ahead log.
#[derive(Debug)]
pub struct LoadedRun {
    /// Configuration fingerprint recorded at run start.
    pub fingerprint: u64,
    /// Number of jobs the original run planned.
    pub jobs: usize,
    /// Last record per job id (duplicates resolve last-wins).
    pub records: BTreeMap<usize, LoadedRecord>,
    /// True when a torn trailing line was dropped.
    pub dropped_trailing: bool,
}

/// Replays the WAL in `dir`. Tolerates exactly the damage a crash can
/// cause: a truncated *trailing* line is dropped; duplicate records for
/// one job (a failure later resolved by a resume) resolve last-wins.
/// Corruption anywhere else is an error — it means something other than a
/// crash modified the log.
///
/// # Errors
///
/// Returns a message when the WAL is missing, its header is unreadable, or
/// a non-trailing line is corrupt.
pub fn load_wal(dir: &Path) -> Result<LoadedRun, String> {
    let path = dir.join(WAL_FILE);
    let bytes = fs::read(&path)
        .map_err(|e| format!("cannot read checkpoint WAL {}: {e}", path.display()))?;
    let text = String::from_utf8_lossy(&bytes);
    let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
    let header = lines
        .first()
        .ok_or_else(|| format!("checkpoint WAL {} is empty", path.display()))?;
    let (fingerprint, jobs) = parse_header(header)
        .map_err(|e| format!("checkpoint WAL {} header unreadable: {e}", path.display()))?;
    let mut records = BTreeMap::new();
    let mut dropped_trailing = false;
    for (i, line) in lines[1..].iter().enumerate() {
        match parse_wal_record(line) {
            Ok(loaded) => {
                records.insert(loaded.record.job_id, loaded);
            }
            Err(e) if i + 2 == lines.len() => {
                // The torn final append of a crash — expected, drop it.
                let _ = e;
                dropped_trailing = true;
            }
            Err(e) => {
                return Err(format!(
                    "checkpoint WAL {} line {} is corrupt: {e}",
                    path.display(),
                    i + 2
                ));
            }
        }
    }
    Ok(LoadedRun { fingerprint, jobs, records, dropped_trailing })
}

/// Loads a checkpointed mask and re-binarizes it. PGM stores one byte per
/// pixel, so `1.0` round-trips as `255 * (1/255)` — not guaranteed to be
/// the bit pattern of `1.0`; masks are binary by construction, so a
/// threshold restores the exact field and its exact [`field_hash`].
pub fn load_mask(dir: &Path, name: &str) -> Result<ilt_field::Field2D, String> {
    let path = dir.join(name);
    let bytes =
        fs::read(&path).map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    Ok(parse_pgm(&bytes).map_err(|e| format!("{}: {e}", path.display()))?.threshold(0.5))
}

/// Turns a replayed record back into a pool output, but only when it is a
/// *durable success*: status carries a mask, the mask file exists, and its
/// bits hash to exactly what the record claims. Anything less returns
/// `None` and the job re-runs.
pub fn restore_output(dir: &Path, loaded: &LoadedRecord) -> Option<JobOutput> {
    if !loaded.record.status.has_mask() {
        return None;
    }
    let name = loaded.ckpt.as_deref()?;
    let expected = loaded.record.metrics.as_ref()?.mask_hash;
    let mask = load_mask(dir, name).ok()?;
    if field_hash(&mask) != expected {
        return None;
    }
    Some(JobOutput { record: loaded.record.clone(), mask: Some(mask) })
}

// ---------------------------------------------------------------------------
// A minimal field extractor for the workspace's own hand-rolled JSON. Not a
// general JSON parser: it relies on the writers in this workspace escaping
// every `"` inside string values, which makes a bare `"key":` sequence
// unambiguous outside strings.
// ---------------------------------------------------------------------------

/// Extracts the raw value of `key` from a single-object JSON line produced
/// by this workspace's writers (`"…"` strings, flat `[…]` arrays, numbers,
/// `null`, booleans). Returns `None` when the key is absent.
pub fn json_field_raw<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let mut from = 0;
    while let Some(pos) = obj[from..].find(&pat) {
        let abs = from + pos;
        if matches!(obj[..abs].chars().next_back(), Some('{') | Some(',')) {
            return Some(json_value_prefix(&obj[abs + pat.len()..]));
        }
        from = abs + pat.len();
    }
    None
}

fn json_value_prefix(s: &str) -> &str {
    let bytes = s.as_bytes();
    match bytes.first() {
        Some(b'"') => {
            let mut i = 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => return &s[..=i],
                    _ => i += 1,
                }
            }
            s // unterminated: a torn line; callers reject it downstream
        }
        Some(b'[') => s.find(']').map_or(s, |i| &s[..=i]),
        _ => {
            let end = s
                .find(|c| c == ',' || c == '}')
                .unwrap_or(s.len());
            &s[..end]
        }
    }
}

/// Decodes a JSON string literal (with quotes) written by
/// [`crate::journal::json_escape`].
pub fn json_unescape(literal: &str) -> Result<String, String> {
    let inner = literal
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("not a string literal: {literal}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{0008}'),
            Some('f') => out.push('\u{000c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let cp = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in {literal}"))?;
                out.push(
                    char::from_u32(cp).ok_or_else(|| format!("bad codepoint in {literal}"))?,
                );
            }
            other => return Err(format!("bad escape \\{other:?} in {literal}")),
        }
    }
    Ok(out)
}

/// Extracts `key` as a decoded string.
pub fn json_field_str(obj: &str, key: &str) -> Result<String, String> {
    json_unescape(json_field_raw(obj, key).ok_or_else(|| format!("missing field {key}"))?)
}

/// Extracts `key` as an unsigned integer.
pub fn json_field_u64(obj: &str, key: &str) -> Result<u64, String> {
    json_field_raw(obj, key)
        .ok_or_else(|| format!("missing field {key}"))?
        .trim()
        .parse()
        .map_err(|_| format!("field {key} is not an integer"))
}

/// Extracts `key` as an `f64`; JSON `null` (a defensively-mapped non-finite
/// value) reads back as 0.
pub fn json_field_f64(obj: &str, key: &str) -> Result<f64, String> {
    let raw = json_field_raw(obj, key).ok_or_else(|| format!("missing field {key}"))?.trim();
    if raw == "null" {
        return Ok(0.0);
    }
    raw.parse().map_err(|_| format!("field {key} is not a number"))
}

fn parse_header(line: &str) -> Result<(u64, usize), String> {
    if json_field_str(line, "kind")? != "run_header" {
        return Err("first WAL line is not a run_header".into());
    }
    let fp = json_field_str(line, "fingerprint")?;
    let fingerprint = u64::from_str_radix(&fp, 16)
        .map_err(|_| format!("bad fingerprint {fp}"))?;
    let jobs = json_field_u64(line, "jobs")? as usize;
    Ok((fingerprint, jobs))
}

/// Parses one WAL record line back into its [`JobRecord`] + checkpoint name.
///
/// # Errors
///
/// Returns a message describing the first malformed field; a torn line
/// (crash mid-append) fails here and is dropped by [`load_wal`] when — and
/// only when — it is the trailing line.
pub fn parse_wal_record(line: &str) -> Result<LoadedRecord, String> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err("line is not a complete JSON object".into());
    }
    let job_id = json_field_u64(line, "job_id")? as usize;
    let case = json_field_str(line, "case")?;
    let tile_raw = json_field_raw(line, "tile").ok_or("missing field tile")?;
    let tile = if tile_raw.trim() == "null" {
        None
    } else {
        let inner = tile_raw
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("bad tile {tile_raw}"))?;
        let mut parts = inner.split(',');
        let r: usize = parts
            .next()
            .and_then(|p| p.trim().parse().ok())
            .ok_or_else(|| format!("bad tile {tile_raw}"))?;
        let c: usize = parts
            .next()
            .and_then(|p| p.trim().parse().ok())
            .ok_or_else(|| format!("bad tile {tile_raw}"))?;
        Some((r, c))
    };
    let grid = json_field_u64(line, "grid")? as usize;
    let attempts = json_field_u64(line, "attempts")? as u32;
    let status = match json_field_str(line, "status")?.as_str() {
        "done" => JobStatus::Done,
        "degraded" => JobStatus::Degraded(json_field_str(line, "reason")?),
        "failed" => JobStatus::Failed(json_field_str(line, "reason")?),
        "cancelled" => JobStatus::Cancelled,
        other => return Err(format!("unknown status {other}")),
    };
    let metrics = if json_field_raw(line, "mask_hash").is_some() {
        Some(JobMetrics {
            l2_nm2: json_field_f64(line, "l2_nm2")?,
            pvband_nm2: json_field_f64(line, "pvband_nm2")?,
            epe_violations: json_field_u64(line, "epe")? as usize,
            shots: json_field_u64(line, "shots")? as usize,
            iterations: json_field_u64(line, "iterations")? as usize,
            mask_hash: u64::from_str_radix(&json_field_str(line, "mask_hash")?, 16)
                .map_err(|_| "bad mask_hash")?,
        })
    } else {
        None
    };
    let times = StageTimes {
        sim_ms: json_field_f64(line, "sim_ms").unwrap_or(0.0),
        optimize_ms: json_field_f64(line, "optimize_ms").unwrap_or(0.0),
        evaluate_ms: json_field_f64(line, "evaluate_ms").unwrap_or(0.0),
    };
    let wall_ms = json_field_f64(line, "wall_ms").unwrap_or(0.0);
    let ckpt_raw = json_field_raw(line, "ckpt").ok_or("missing field ckpt")?;
    let ckpt = if ckpt_raw.trim() == "null" { None } else { Some(json_unescape(ckpt_raw)?) };
    Ok(LoadedRecord {
        record: JobRecord { job_id, case, tile, grid, attempts, status, metrics, times, wall_ms },
        ckpt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_field::Field2D;

    fn record(id: usize, status: JobStatus, with_metrics: bool) -> JobRecord {
        JobRecord {
            job_id: id,
            case: "case \"x\"".into(),
            tile: if id % 2 == 0 { Some((1, 2)) } else { None },
            grid: 128,
            attempts: 2,
            status,
            metrics: with_metrics.then_some(JobMetrics {
                l2_nm2: 123.5,
                pvband_nm2: 45.25,
                epe_violations: 3,
                shots: 77,
                iterations: 12,
                mask_hash: 0x0123_4567_89ab_cdef,
            }),
            times: StageTimes { sim_ms: 1.5, optimize_ms: 2.5, evaluate_ms: 0.5 },
            wall_ms: 4.5,
        }
    }

    #[test]
    fn wal_record_round_trips() {
        for (status, metrics, ckpt) in [
            (JobStatus::Done, true, Some("job-0.pgm")),
            (JobStatus::Degraded("numeric: NaN".into()), true, Some("job-0.pgm")),
            (JobStatus::Failed("panic: \"quoted\"\nboom".into()), false, None),
        ] {
            let rec = record(0, status, metrics);
            let line = rec.to_json_wal(ckpt);
            let parsed = parse_wal_record(&line).expect(&line);
            assert_eq!(parsed.record, rec, "round trip of {line}");
            assert_eq!(parsed.ckpt.as_deref(), ckpt);
        }
    }

    #[test]
    fn field_extractor_skips_keys_inside_strings() {
        // The value of "case" contains text that looks like other keys, but
        // its quotes arrive escaped, so the extractor must not be fooled.
        let rec = JobRecord {
            case: "evil\",\"status\":\"done".into(),
            ..record(7, JobStatus::Failed("why".into()), false)
        };
        let line = rec.to_json_wal(None);
        let parsed = parse_wal_record(&line).unwrap();
        assert_eq!(parsed.record.case, "evil\",\"status\":\"done");
        assert!(matches!(parsed.record.status, JobStatus::Failed(_)));
    }

    #[test]
    fn truncated_trailing_line_is_dropped_and_midfile_corruption_is_not() {
        let dir = std::env::temp_dir().join(format!("ilt-wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink =
            CheckpointSink::create(&dir, 0xabcd, 3, false, FaultPlan::none()).unwrap();
        drop(sink);
        let wal = dir.join(WAL_FILE);
        let r0 = record(0, JobStatus::Done, true).to_json_wal(Some("job-0.pgm"));
        let r1 = record(1, JobStatus::Failed("panic: x".into()), false).to_json_wal(None);
        let torn = &r1[..r1.len() / 2];

        let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
        writeln!(f, "{r0}").unwrap();
        writeln!(f, "{r1}").unwrap();
        write!(f, "{torn}").unwrap(); // crash mid-append: no newline, half a line
        drop(f);
        let run = load_wal(&dir).unwrap();
        assert_eq!(run.fingerprint, 0xabcd);
        assert_eq!(run.jobs, 3);
        assert!(run.dropped_trailing);
        assert_eq!(run.records.len(), 2);
        assert!(run.records[&0].record.status.is_done());

        // The same torn text in the *middle* of the log is real corruption.
        let mut f = File::create(&wal).unwrap();
        writeln!(f, "{{\"kind\":\"run_header\",\"version\":1,\"fingerprint\":\"000000000000abcd\",\"jobs\":3}}").unwrap();
        writeln!(f, "{torn}").unwrap();
        writeln!(f, "{r0}").unwrap();
        drop(f);
        assert!(load_wal(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_records_resolve_last_wins() {
        let dir = std::env::temp_dir().join(format!("ilt-wal-dup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = CheckpointSink::create(&dir, 1, 1, false, FaultPlan::none()).unwrap();
        drop(sink);
        let fail = record(0, JobStatus::Failed("panic: first try".into()), false);
        let done = record(0, JobStatus::Done, true);
        let mut f = OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
        writeln!(f, "{}", fail.to_json_wal(None)).unwrap();
        writeln!(f, "{}", done.to_json_wal(Some("job-0.pgm"))).unwrap();
        drop(f);
        let run = load_wal(&dir).unwrap();
        assert_eq!(run.records.len(), 1);
        assert!(run.records[&0].record.status.is_done(), "last record wins");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mask_persistence_is_hash_exact_through_pgm() {
        let dir = std::env::temp_dir().join(format!("ilt-wal-mask-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mask = Field2D::from_fn(16, 16, |r, c| f64::from(u8::from((r + c) % 3 == 0)));
        write_atomic(&dir, "job-0.pgm", &pgm_bytes(&mask, 0.0, 1.0)).unwrap();
        let loaded = load_mask(&dir, "job-0.pgm").unwrap();
        assert_eq!(field_hash(&loaded), field_hash(&mask), "binary masks round-trip bit-exact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_missing_or_corrupt_masks() {
        let dir = std::env::temp_dir().join(format!("ilt-wal-restore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mask = Field2D::from_fn(8, 8, |r, _| f64::from(u8::from(r < 4)));
        let mut rec = record(0, JobStatus::Done, true);
        rec.metrics.as_mut().unwrap().mask_hash = field_hash(&mask);
        let loaded = LoadedRecord { record: rec.clone(), ckpt: Some("job-0.pgm".into()) };

        // No file on disk yet: not durable.
        assert!(restore_output(&dir, &loaded).is_none());
        write_atomic(&dir, "job-0.pgm", &pgm_bytes(&mask, 0.0, 1.0)).unwrap();
        let out = restore_output(&dir, &loaded).expect("durable checkpoint restores");
        assert_eq!(field_hash(out.mask.as_ref().unwrap()), field_hash(&mask));

        // A record whose hash disagrees with the file is not durable.
        let mut bad = loaded.clone();
        bad.record.metrics.as_mut().unwrap().mask_hash ^= 1;
        assert!(restore_output(&dir, &bad).is_none());
        // Failed records never restore, even with a file present.
        let failed = LoadedRecord {
            record: record(0, JobStatus::Failed("x".into()), false),
            ckpt: Some("job-0.pgm".into()),
        };
        assert!(restore_output(&dir, &failed).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_results_not_execution() {
        let case = BatchCase {
            name: "c".into(),
            target: Field2D::from_fn(64, 64, |r, _| f64::from(u8::from(r > 32))),
            nm_per_px: 8.0,
        };
        let base = BatchConfig::default();
        let fp = config_fingerprint(std::slice::from_ref(&case), &base);
        // Execution-only knobs do not change identity.
        let mut exec = base.clone();
        exec.threads = 16;
        exec.max_retries = 9;
        exec.timeout = Some(std::time::Duration::from_secs(1));
        assert_eq!(fp, config_fingerprint(std::slice::from_ref(&case), &exec));
        // Result-affecting knobs do.
        let mut tiled = base.clone();
        tiled.halo = base.halo + 8;
        assert_ne!(fp, config_fingerprint(std::slice::from_ref(&case), &tiled));
        let mut renamed = case.clone();
        renamed.name = "d".into();
        assert_ne!(fp, config_fingerprint(&[renamed], &base));
    }
}
