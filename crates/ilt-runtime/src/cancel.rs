//! Cooperative cancellation and live progress for pool runs.
//!
//! Both types are thin `Arc`-wrapped atomics so a caller (the HTTP server,
//! a CLI signal handler) can keep one end while the worker pool holds the
//! other. Cancellation is *cooperative*: the pool checks the token at each
//! tile boundary — an in-flight attempt is never interrupted, it finishes
//! (or times out) and then the remaining queue drains as `cancelled`
//! records. Progress counts tiles whose outcome is known (done, degraded,
//! or failed — not cancelled), which is exactly the "tiles done so far"
//! number a polling client wants.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; the default
/// token is never cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A shared monotonic counter of finished work items (tiles). Clones
/// observe the same counter.
#[derive(Clone, Debug, Default)]
pub struct Progress(Arc<AtomicUsize>);

impl Progress {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one more finished item.
    pub fn tick(&self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }

    /// Items finished so far.
    pub fn done(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        c.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn progress_counts_across_clones_and_threads() {
        let p = Progress::new();
        let q = p.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        q.tick();
                    }
                });
            }
        });
        assert_eq!(p.done(), 100);
    }
}
