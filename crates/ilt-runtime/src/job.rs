//! Job definition and single-attempt execution.
//!
//! An [`IltJob`] is a self-contained unit of work: a power-of-two target
//! clip (a whole layout or one tile window), the optics it images under,
//! the multi-level recipe to run, and bookkeeping identity. Execution is a
//! pure function of the job — no shared mutable state beyond the read-only
//! simulator cache — which is what makes the pool's result deterministic
//! under any thread count.

use std::time::Instant;

use ilt_core::{IltConfig, MultiLevelIlt, Stage};
use ilt_field::Field2D;
use ilt_metrics::{EpeChecker, EvalReport};
use ilt_optics::OpticsConfig;

use crate::cache::SimulatorCache;
use crate::journal::{field_hash, JobMetrics, StageTimes};
use crate::tiler::TileSpec;

/// One schedulable unit: a whole clip or one tile of a larger field.
#[derive(Clone, Debug)]
pub struct IltJob {
    /// Unique job id; results are ordered by it.
    pub id: usize,
    /// Case the job belongs to (journal label).
    pub case: String,
    /// Tile placement when the job is one tile of a larger field.
    pub tile: Option<TileSpec>,
    /// The (window) target to optimize, square power-of-two.
    pub target: Field2D,
    /// Optics for this job; `grid` must equal the target side length.
    pub optics: OpticsConfig,
    /// ILT hyper-parameters.
    pub ilt: IltConfig,
    /// Multi-level schedule, already clamped to the job's grid.
    pub schedule: Vec<Stage>,
    /// Testing hook: panic on the first `n` attempts (0 = never). Exercises
    /// the pool's panic isolation and retry policy without a real defect.
    pub inject_panics: u32,
}

/// The product of a successful attempt.
#[derive(Clone, Debug)]
pub struct JobSuccess {
    /// Final binary mask at the job's grid.
    pub mask: Field2D,
    /// Contest metrics of the job's own window.
    pub metrics: JobMetrics,
    /// Per-stage wall-times.
    pub times: StageTimes,
}

/// Runs one attempt of a job to completion.
///
/// # Errors
///
/// Returns the simulator-construction error for an invalid optics
/// configuration.
///
/// # Panics
///
/// Panics when the injected-failure budget covers `attempt`, and on the
/// usual contract violations (target/grid mismatch); the pool converts
/// panics into failed attempts via `catch_unwind`.
pub fn run_attempt(
    job: &IltJob,
    attempt: u32,
    cache: &SimulatorCache,
) -> Result<JobSuccess, String> {
    assert!(
        job.inject_panics < attempt,
        "injected failure: job {} attempt {attempt}",
        job.id
    );

    let t_sim = Instant::now();
    let sim = cache.get_or_build(&job.optics)?;
    let sim_ms = t_sim.elapsed().as_secs_f64() * 1e3;

    let t_opt = Instant::now();
    let result = MultiLevelIlt::new(sim.clone(), job.ilt.clone()).run(&job.target, &job.schedule);
    let optimize_ms = t_opt.elapsed().as_secs_f64() * 1e3;

    let t_eval = Instant::now();
    let corners = sim.print_corners(&result.mask);
    let checker = EpeChecker { nm_per_px: job.optics.nm_per_px, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        &job.target,
        &result.mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        t_opt.elapsed(),
    );
    let evaluate_ms = t_eval.elapsed().as_secs_f64() * 1e3;

    let metrics = JobMetrics {
        l2_nm2: report.l2_nm2,
        pvband_nm2: report.pvband_nm2,
        epe_violations: report.epe_violations(),
        shots: report.shots,
        iterations: result.total_iterations,
        mask_hash: field_hash(&result.mask),
    };
    Ok(JobSuccess {
        mask: result.mask,
        metrics,
        times: StageTimes { sim_ms, optimize_ms, evaluate_ms },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_core::Stage;

    fn small_job(inject: u32) -> IltJob {
        let n = 64;
        let target = Field2D::from_fn(n, n, |r, c| {
            if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
        });
        IltJob {
            id: 0,
            case: "unit".into(),
            tile: None,
            target,
            optics: OpticsConfig {
                grid: n,
                nm_per_px: 8.0,
                num_kernels: 3,
                ..OpticsConfig::default()
            },
            ilt: IltConfig::default(),
            schedule: vec![Stage::low_res(2, 4)],
            inject_panics: inject,
        }
    }

    #[test]
    fn attempt_produces_mask_and_metrics() {
        let cache = SimulatorCache::new();
        let out = run_attempt(&small_job(0), 1, &cache).expect("job runs");
        assert_eq!(out.mask.shape(), (64, 64));
        assert_eq!(out.metrics.iterations, 4);
        assert!(out.metrics.l2_nm2.is_finite());
        assert!(out.times.optimize_ms > 0.0);
    }

    #[test]
    fn attempts_are_deterministic() {
        let cache = SimulatorCache::new();
        let a = run_attempt(&small_job(0), 1, &cache).unwrap();
        let b = run_attempt(&small_job(0), 1, &cache).unwrap();
        assert_eq!(a.metrics.mask_hash, b.metrics.mask_hash);
        assert_eq!(a.metrics.l2_nm2.to_bits(), b.metrics.l2_nm2.to_bits());
    }

    #[test]
    #[should_panic(expected = "injected failure")]
    fn injected_failure_panics_until_budget_spent() {
        let cache = SimulatorCache::new();
        let _ = run_attempt(&small_job(1), 1, &cache);
    }

    #[test]
    fn injected_failure_clears_on_retry() {
        let cache = SimulatorCache::new();
        assert!(run_attempt(&small_job(1), 2, &cache).is_ok());
    }

    #[test]
    fn bad_optics_is_an_error_not_a_panic() {
        let cache = SimulatorCache::new();
        let mut job = small_job(0);
        job.optics.grid = 100; // not a power of two
        assert!(run_attempt(&job, 1, &cache).is_err());
    }
}
