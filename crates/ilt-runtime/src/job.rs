//! Job definition and single-attempt execution.
//!
//! An [`IltJob`] is a self-contained unit of work: a power-of-two target
//! clip (a whole layout or one tile window), the optics it images under,
//! the multi-level recipe to run, and bookkeeping identity. Execution is a
//! pure function of the job — no shared mutable state beyond the read-only
//! simulator cache — which is what makes the pool's result deterministic
//! under any thread count.
//!
//! Faults are injected here, at the attempt boundary, from the run's
//! [`FaultPlan`]: a panic fires before any work, a delay stalls the attempt
//! into its timeout, a build error poisons simulator acquisition, and a NaN
//! poison corrupts the finished mask so the numeric guard below must catch
//! it. The guard itself is not a test fixture: any non-finite value escaping
//! the optimizer (poisoned or real) fails the attempt with a typed
//! `"numeric"` reason instead of journaling a garbage mask.

use std::time::Instant;

use ilt_core::{IltConfig, MultiLevelIlt, Stage};
use ilt_field::Field2D;
use ilt_metrics::{EpeChecker, EvalReport};
use ilt_optics::OpticsConfig;

use crate::cache::SimulatorCache;
use crate::fault::FaultPlan;
use crate::journal::{field_hash, JobMetrics, StageTimes};
use crate::tiler::TileSpec;

/// One schedulable unit: a whole clip or one tile of a larger field.
#[derive(Clone, Debug)]
pub struct IltJob {
    /// Unique job id; also the result-ordering key.
    pub id: usize,
    /// Case the job belongs to (journal label).
    pub case: String,
    /// Tile placement when the job is one tile of a larger field.
    pub tile: Option<TileSpec>,
    /// The (window) target to optimize, square power-of-two.
    pub target: Field2D,
    /// Optics for this job; `grid` must equal the target side length.
    pub optics: OpticsConfig,
    /// ILT hyper-parameters.
    pub ilt: IltConfig,
    /// Multi-level schedule, already clamped to the job's grid.
    pub schedule: Vec<Stage>,
}

impl IltJob {
    /// The degraded-fallback recipe: only the coarsest low-resolution stage
    /// of the job's schedule (the paper's Eq. 8 scale-`s` path). A tile
    /// that keeps failing its full recipe still gets a *corrected* mask
    /// from the cheap coarse pass instead of raw target geometry. `None`
    /// when the schedule is empty or already consists of exactly one
    /// stage at the coarsest scale (the fallback would just repeat it).
    pub fn degraded_schedule(&self) -> Option<Vec<Stage>> {
        let coarsest = self.schedule.iter().max_by_key(|s| s.scale)?;
        let fallback = vec![Stage::low_res(coarsest.scale, coarsest.iterations)];
        if fallback == self.schedule {
            return None;
        }
        Some(fallback)
    }
}

/// The product of a successful attempt.
#[derive(Clone, Debug)]
pub struct JobSuccess {
    /// Final binary mask at the job's grid.
    pub mask: Field2D,
    /// Contest metrics of the job's own window.
    pub metrics: JobMetrics,
    /// Per-stage wall-times.
    pub times: StageTimes,
}

/// Runs one attempt of a job to completion, with `schedule` selecting the
/// recipe (the job's own, or its degraded fallback).
///
/// # Errors
///
/// Returns the simulator-construction error for an invalid optics
/// configuration, an injected `io:` build error, or a typed `numeric:`
/// error when the result contains non-finite values.
///
/// # Panics
///
/// Panics when the fault plan targets `(job.id, attempt)` with a panic, and
/// on the usual contract violations (target/grid mismatch); the pool
/// converts panics into failed attempts via `catch_unwind`.
fn run_scheduled_attempt(
    job: &IltJob,
    schedule: &[Stage],
    attempt: u32,
    cache: &SimulatorCache,
    faults: &FaultPlan,
) -> Result<JobSuccess, String> {
    if let Some(stall) = faults.delay(job.id, attempt) {
        std::thread::sleep(stall);
    }
    assert!(
        !faults.should_panic(job.id, attempt),
        "injected failure: job {} attempt {attempt}",
        job.id
    );

    let t_sim = Instant::now();
    if faults.build_error(job.id, attempt) {
        return Err(format!(
            "io: injected simulator acquisition failure (job {} attempt {attempt})",
            job.id
        ));
    }
    let sim = cache.get_or_build(&job.optics)?;
    let sim_ms = t_sim.elapsed().as_secs_f64() * 1e3;

    let t_opt = Instant::now();
    let mut result = MultiLevelIlt::new(sim.clone(), job.ilt.clone()).run(&job.target, schedule);
    let optimize_ms = t_opt.elapsed().as_secs_f64() * 1e3;
    if faults.poison_nan(job.id, attempt) {
        result.mask[(0, 0)] = f64::NAN;
    }
    // Numeric guard: never let a non-finite value reach the journal or the
    // stitcher. The reason is typed ("numeric") so the journal summary and
    // the server's failure counters can track it separately; the failure is
    // ordinary and retryable like any other.
    if !result.mask.as_slice().iter().all(|v| v.is_finite()) {
        return Err(format!(
            "numeric: non-finite values in optimized mask (job {} attempt {attempt})",
            job.id
        ));
    }

    let t_eval = Instant::now();
    let corners = sim.print_corners(&result.mask);
    let checker = EpeChecker { nm_per_px: job.optics.nm_per_px, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        &job.target,
        &result.mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        t_opt.elapsed(),
    );
    let evaluate_ms = t_eval.elapsed().as_secs_f64() * 1e3;
    if !(report.l2_nm2.is_finite() && report.pvband_nm2.is_finite()) {
        return Err(format!(
            "numeric: non-finite evaluation metrics (job {} attempt {attempt})",
            job.id
        ));
    }

    let metrics = JobMetrics {
        l2_nm2: report.l2_nm2,
        pvband_nm2: report.pvband_nm2,
        epe_violations: report.epe_violations(),
        shots: report.shots,
        iterations: result.total_iterations,
        mask_hash: field_hash(&result.mask),
    };
    Ok(JobSuccess {
        mask: result.mask,
        metrics,
        times: StageTimes { sim_ms, optimize_ms, evaluate_ms },
    })
}

/// Runs one attempt of a job with its full recipe.
///
/// # Errors
///
/// See [`run_degraded_attempt`]; both surface the same error taxonomy.
///
/// # Panics
///
/// Panics when the fault plan targets `(job.id, attempt)` with a panic.
pub fn run_attempt(
    job: &IltJob,
    attempt: u32,
    cache: &SimulatorCache,
    faults: &FaultPlan,
) -> Result<JobSuccess, String> {
    run_scheduled_attempt(job, &job.schedule, attempt, cache, faults)
}

/// Runs the degraded fallback: the coarsest low-resolution pass only.
/// Returns `None` when the job has no cheaper recipe to fall back to.
///
/// # Errors
///
/// Same taxonomy as [`run_attempt`]; faults keyed to `attempt` still fire,
/// so chaos plans can kill the fallback too.
pub fn run_degraded_attempt(
    job: &IltJob,
    attempt: u32,
    cache: &SimulatorCache,
    faults: &FaultPlan,
) -> Option<Result<JobSuccess, String>> {
    let schedule = job.degraded_schedule()?;
    Some(run_scheduled_attempt(job, &schedule, attempt, cache, faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec};
    use ilt_core::Stage;

    fn small_job() -> IltJob {
        let n = 64;
        let target = Field2D::from_fn(n, n, |r, c| {
            if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
        });
        IltJob {
            id: 0,
            case: "unit".into(),
            tile: None,
            target,
            optics: OpticsConfig {
                grid: n,
                nm_per_px: 8.0,
                num_kernels: 3,
                ..OpticsConfig::default()
            },
            ilt: IltConfig::default(),
            schedule: vec![Stage::low_res(2, 4)],
        }
    }

    fn panics(n: u32) -> FaultPlan {
        FaultPlan::none().with(FaultSpec::through(0, n, FaultKind::Panic))
    }

    #[test]
    fn attempt_produces_mask_and_metrics() {
        let cache = SimulatorCache::new();
        let out = run_attempt(&small_job(), 1, &cache, &FaultPlan::none()).expect("job runs");
        assert_eq!(out.mask.shape(), (64, 64));
        assert_eq!(out.metrics.iterations, 4);
        assert!(out.metrics.l2_nm2.is_finite());
        assert!(out.times.optimize_ms > 0.0);
    }

    #[test]
    fn attempts_are_deterministic() {
        let cache = SimulatorCache::new();
        let a = run_attempt(&small_job(), 1, &cache, &FaultPlan::none()).unwrap();
        let b = run_attempt(&small_job(), 1, &cache, &FaultPlan::none()).unwrap();
        assert_eq!(a.metrics.mask_hash, b.metrics.mask_hash);
        assert_eq!(a.metrics.l2_nm2.to_bits(), b.metrics.l2_nm2.to_bits());
    }

    #[test]
    #[should_panic(expected = "injected failure")]
    fn injected_failure_panics_until_budget_spent() {
        let cache = SimulatorCache::new();
        let _ = run_attempt(&small_job(), 1, &cache, &panics(1));
    }

    #[test]
    fn injected_failure_clears_on_retry() {
        let cache = SimulatorCache::new();
        assert!(run_attempt(&small_job(), 2, &cache, &panics(1)).is_ok());
    }

    #[test]
    fn bad_optics_is_an_error_not_a_panic() {
        let cache = SimulatorCache::new();
        let mut job = small_job();
        job.optics.grid = 100; // not a power of two
        assert!(run_attempt(&job, 1, &cache, &FaultPlan::none()).is_err());
    }

    #[test]
    fn poisoned_result_trips_the_numeric_guard() {
        let cache = SimulatorCache::new();
        let faults = FaultPlan::none().with(FaultSpec::at(0, 1, FaultKind::PoisonNan));
        let err = run_attempt(&small_job(), 1, &cache, &faults).unwrap_err();
        assert!(err.starts_with("numeric:"), "{err}");
        // The next attempt (no fault) is clean.
        assert!(run_attempt(&small_job(), 2, &cache, &faults).is_ok());
    }

    #[test]
    fn injected_build_error_is_typed_io() {
        let cache = SimulatorCache::new();
        let faults = FaultPlan::none().with(FaultSpec::at(0, 1, FaultKind::BuildError));
        let err = run_attempt(&small_job(), 1, &cache, &faults).unwrap_err();
        assert!(err.starts_with("io:"), "{err}");
        assert!(cache.is_empty(), "injected build error must not populate the cache");
    }

    #[test]
    fn degraded_schedule_is_the_coarsest_low_res_stage() {
        let mut job = small_job();
        job.schedule = vec![Stage::low_res(4, 10), Stage::low_res(2, 5), Stage::high_res(1, 3)];
        assert_eq!(job.degraded_schedule(), Some(vec![Stage::low_res(4, 10)]));
        // A schedule that already *is* its own coarsest pass has no cheaper
        // fallback.
        job.schedule = vec![Stage::low_res(2, 4)];
        assert!(job.degraded_schedule().is_none());
        job.schedule.clear();
        assert!(job.degraded_schedule().is_none());
    }

    #[test]
    fn degraded_attempt_runs_the_fallback_recipe() {
        let cache = SimulatorCache::new();
        let mut job = small_job();
        job.schedule = vec![Stage::low_res(2, 4), Stage::high_res(1, 2)];
        let out = run_degraded_attempt(&job, 3, &cache, &FaultPlan::none())
            .expect("fallback exists")
            .expect("fallback runs");
        assert_eq!(out.mask.shape(), (64, 64));
        assert_eq!(out.metrics.iterations, 4, "only the coarse stage runs");
    }
}
