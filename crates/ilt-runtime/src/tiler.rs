//! Overlapping-tile partitioning and stitching of large fields.
//!
//! Full-chip ILT cannot simulate a whole layout in one FFT, so the runtime
//! cuts the target into square **windows** of `tile` pixels that overlap by
//! `2 * halo`. Each window is optimized independently; only its **core**
//! (the window minus a `halo`-pixel guard band on each interior side) is
//! trusted, because the circular convolution of the FFT-based imaging model
//! wraps at window borders. Cores partition the field exactly, so crop
//! stitching is bit-deterministic; an optional linear seam blend averages a
//! `2 * band` strip across core boundaries for masks whose features touch a
//! seam.
//!
//! The guard band should be at least the optical interaction radius —
//! `halo * nm_per_px >= lambda / NA` (~143 nm for the contest stack) is a
//! practical floor; the acceptance tests use features `>= halo` away from
//! seams, where tiled and untiled aerial images agree to ~1e-6.

use ilt_field::{accumulate_weighted, normalize_weighted, seam_weights, Field2D};

/// How tile results are merged across seams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeamPolicy {
    /// Every output pixel comes from exactly one tile's core (deterministic
    /// hard crop; the default).
    Crop,
    /// Linear ramp over a `2 * band` pixel strip straddling each core
    /// boundary; adjacent ramps sum to one, so agreeing tiles blend
    /// exactly. `band` is clamped to the halo.
    Blend {
        /// Half-width of the blend strip, in pixels.
        band: usize,
    },
}

impl Default for SeamPolicy {
    fn default() -> Self {
        SeamPolicy::Crop
    }
}

/// Placement of one tile: its simulation window and trusted core region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileSpec {
    /// Dense tile index (row-major over the tile grid).
    pub index: usize,
    /// Tile-grid coordinates.
    pub grid_row: usize,
    /// Tile-grid coordinates.
    pub grid_col: usize,
    /// Top-left corner of the `tile x tile` simulation window, field px.
    pub window_r0: usize,
    /// Top-left corner of the `tile x tile` simulation window, field px.
    pub window_c0: usize,
    /// Top-left corner of the trusted core region, field px.
    pub core_r0: usize,
    /// Top-left corner of the trusted core region, field px.
    pub core_c0: usize,
    /// Core height in px (edge tiles may carry a short final core).
    pub core_rows: usize,
    /// Core width in px.
    pub core_cols: usize,
}

impl TileSpec {
    /// Core origin relative to the tile window.
    pub fn core_in_window(&self) -> (usize, usize) {
        (self.core_r0 - self.window_r0, self.core_c0 - self.window_c0)
    }
}

/// The tile decomposition of a square field.
#[derive(Clone, Debug)]
pub struct TileGrid {
    field: usize,
    tile: usize,
    halo: usize,
    per_side: usize,
}

impl TileGrid {
    /// Plans the decomposition of a `field x field` target into `tile`-pixel
    /// windows with a `halo`-pixel guard band.
    ///
    /// # Errors
    ///
    /// Returns a message if `tile` is not a power of two, the halo leaves no
    /// core (`2 * halo >= tile`), or the field is smaller than one tile.
    pub fn new(field: usize, tile: usize, halo: usize) -> Result<Self, String> {
        if !tile.is_power_of_two() {
            return Err(format!("tile size {tile} must be a power of two"));
        }
        if 2 * halo >= tile {
            return Err(format!("halo {halo} leaves no core in a {tile}-px tile"));
        }
        if field < tile {
            return Err(format!(
                "field {field} smaller than tile {tile}; run it as a whole clip"
            ));
        }
        let core = tile - 2 * halo;
        let per_side = field.div_ceil(core);
        Ok(TileGrid { field, tile, halo, per_side })
    }

    /// Field side length in pixels.
    pub fn field(&self) -> usize {
        self.field
    }

    /// Simulation window side length in pixels.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Guard band width in pixels.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Core side length (`tile - 2 * halo`).
    pub fn core(&self) -> usize {
        self.tile - 2 * self.halo
    }

    /// Number of tiles along one side.
    pub fn per_side(&self) -> usize {
        self.per_side
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.per_side * self.per_side
    }

    /// True when the plan degenerates to a single tile.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One axis of the placement: `(window0, core0, core_len)` for tile `i`.
    fn axis(&self, i: usize) -> (usize, usize, usize) {
        let core = self.core();
        let core0 = i * core;
        let core_len = core.min(self.field - core0);
        // Keep the full window inside the field; edge windows shift inward
        // so their core sits asymmetrically in the window.
        let ideal = core0 as isize - self.halo as isize;
        let window0 = ideal.clamp(0, (self.field - self.tile) as isize) as usize;
        (window0, core0, core_len)
    }

    /// All tile placements, row-major and deterministic.
    pub fn specs(&self) -> Vec<TileSpec> {
        let mut out = Vec::with_capacity(self.len());
        for gr in 0..self.per_side {
            let (wr0, cr0, crows) = self.axis(gr);
            for gc in 0..self.per_side {
                let (wc0, cc0, ccols) = self.axis(gc);
                out.push(TileSpec {
                    index: gr * self.per_side + gc,
                    grid_row: gr,
                    grid_col: gc,
                    window_r0: wr0,
                    window_c0: wc0,
                    core_r0: cr0,
                    core_c0: cc0,
                    core_rows: crows,
                    core_cols: ccols,
                });
            }
        }
        out
    }

    /// Cuts the tile's simulation window out of the full field.
    ///
    /// # Panics
    ///
    /// Panics if `spec` does not belong to a grid of this geometry.
    pub fn extract(&self, field: &Field2D, spec: &TileSpec) -> Field2D {
        field.crop(spec.window_r0, spec.window_c0, self.tile, self.tile)
    }

    /// Reassembles per-tile results into a full field.
    ///
    /// `tiles[i]` must be the `tile x tile` result for `specs()[i]`; `None`
    /// entries (failed jobs) leave their core at `fallback`'s values.
    ///
    /// # Panics
    ///
    /// Panics if a tile has the wrong shape or `fallback` is not field-sized.
    pub fn stitch(
        &self,
        tiles: &[Option<Field2D>],
        seam: SeamPolicy,
        fallback: &Field2D,
    ) -> Field2D {
        assert_eq!(tiles.len(), self.len(), "tile count mismatch");
        assert_eq!(fallback.shape(), (self.field, self.field), "fallback shape");
        let specs = self.specs();
        match seam {
            SeamPolicy::Crop => {
                let mut out = fallback.clone();
                for (spec, tile) in specs.iter().zip(tiles) {
                    let Some(tile) = tile else { continue };
                    assert_eq!(tile.shape(), (self.tile, self.tile), "tile shape");
                    let (or, oc) = spec.core_in_window();
                    let core = tile.crop(or, oc, spec.core_rows, spec.core_cols);
                    out.paste(&core, spec.core_r0, spec.core_c0);
                }
                out
            }
            SeamPolicy::Blend { band } => {
                let band = band.min(self.halo);
                let mut acc = Field2D::zeros(self.field, self.field);
                let mut wacc = Field2D::zeros(self.field, self.field);
                for (spec, tile) in specs.iter().zip(tiles) {
                    let Some(tile) = tile else { continue };
                    assert_eq!(tile.shape(), (self.tile, self.tile), "tile shape");
                    // Contribution region: core expanded by `band` into the
                    // halo on sides with a neighbor.
                    let up = spec.grid_row > 0;
                    let down = spec.core_r0 + spec.core_rows < self.field;
                    let left = spec.grid_col > 0;
                    let right = spec.core_c0 + spec.core_cols < self.field;
                    let er0 = spec.core_r0 - if up { band } else { 0 };
                    let ec0 = spec.core_c0 - if left { band } else { 0 };
                    let er1 = (spec.core_r0 + spec.core_rows + if down { band } else { 0 })
                        .min(self.field);
                    let ec1 = (spec.core_c0 + spec.core_cols + if right { band } else { 0 })
                        .min(self.field);
                    let (rows, cols) = (er1 - er0, ec1 - ec0);
                    let src = tile.crop(er0 - spec.window_r0, ec0 - spec.window_c0, rows, cols);
                    let w = seam_weights(rows, cols, band, [up, down, left, right]);
                    accumulate_weighted(&mut acc, &mut wacc, &src, &w, er0, ec0);
                }
                let mut out = normalize_weighted(&acc, &wacc, 0.0);
                // Pixels no tile covered (failed jobs beyond any neighbor's
                // blend strip) take the fallback.
                let w = wacc.as_slice();
                let fb = fallback.as_slice();
                for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
                    if w[i] <= 1e-12 {
                        *v = fb[i];
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_geometry() {
        assert!(TileGrid::new(1024, 100, 8).is_err()); // non power of two
        assert!(TileGrid::new(1024, 64, 32).is_err()); // no core left
        assert!(TileGrid::new(128, 256, 16).is_err()); // field < tile
    }

    #[test]
    fn cores_partition_the_field_exactly() {
        let grid = TileGrid::new(640, 256, 32).expect("valid");
        let mut coverage = vec![0u8; 640 * 640];
        for s in grid.specs() {
            for r in s.core_r0..s.core_r0 + s.core_rows {
                for c in s.core_c0..s.core_c0 + s.core_cols {
                    coverage[r * 640 + c] += 1;
                }
            }
        }
        assert!(coverage.iter().all(|&n| n == 1), "cores must tile exactly once");
    }

    #[test]
    fn windows_stay_inside_the_field() {
        let grid = TileGrid::new(640, 256, 32).expect("valid");
        for s in grid.specs() {
            assert!(s.window_r0 + grid.tile() <= 640);
            assert!(s.window_c0 + grid.tile() <= 640);
            // The core must sit inside its window with the halo honored on
            // interior sides.
            let (or, oc) = s.core_in_window();
            assert!(or + s.core_rows <= grid.tile());
            assert!(oc + s.core_cols <= grid.tile());
            if s.grid_row > 0 {
                assert!(or >= grid.halo(), "interior tile missing top halo");
            }
        }
    }

    #[test]
    fn crop_stitch_is_exact_for_identical_tiles() {
        // If every tile is the matching crop of one source field, stitching
        // reproduces the source bit-for-bit.
        let grid = TileGrid::new(512, 256, 64).expect("valid");
        let src = Field2D::from_fn(512, 512, |r, c| (r * 7 + c * 13) as f64 * 0.01);
        let tiles: Vec<Option<Field2D>> =
            grid.specs().iter().map(|s| Some(grid.extract(&src, s))).collect();
        let crop = grid.stitch(&tiles, SeamPolicy::Crop, &Field2D::zeros(512, 512));
        assert_eq!(crop, src);
        let blend =
            grid.stitch(&tiles, SeamPolicy::Blend { band: 16 }, &Field2D::zeros(512, 512));
        for (a, b) in blend.as_slice().iter().zip(src.as_slice()) {
            assert!((a - b).abs() < 1e-9, "blend of agreeing tiles must be exact");
        }
    }

    #[test]
    fn failed_tiles_fall_back() {
        let grid = TileGrid::new(512, 256, 64).expect("valid");
        let fallback = Field2D::filled(512, 512, 0.25);
        let mut tiles: Vec<Option<Field2D>> = vec![None; grid.len()];
        tiles[0] = Some(Field2D::filled(256, 256, 1.0));
        let out = grid.stitch(&tiles, SeamPolicy::Crop, &fallback);
        let s0 = &grid.specs()[0];
        assert_eq!(out[(s0.core_r0, s0.core_c0)], 1.0);
        assert_eq!(out[(511, 511)], 0.25, "missing tile keeps fallback");
    }

    #[test]
    fn single_row_geometry() {
        // field == tile is rejected upstream, but field slightly above one
        // core still produces a valid 2x2 decomposition.
        let grid = TileGrid::new(300, 256, 32).expect("valid");
        assert_eq!(grid.per_side(), 2);
        let specs = grid.specs();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[3].core_rows, 300 - 192);
    }
}
