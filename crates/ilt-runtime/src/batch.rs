//! The batch engine: cases → tiles → jobs → pool → stitched masks + journal.
//!
//! `run_batch` is the full-chip entry point. Each case whose target fits in
//! one tile runs as a single whole-clip job; larger targets are decomposed
//! by [`TileGrid`] and every tile becomes an independent job. All jobs of
//! all cases go into one worker pool so a mix of clip sizes load-balances,
//! and all simulators come from one shared [`SimulatorCache`] so each
//! distinct optics configuration is built exactly once per process.
//!
//! Failed tiles degrade, not abort: a tile that exhausts its retries first
//! falls back to its coarse low-resolution ILT result (journaled as
//! `Degraded`), and only if that also fails does its core fall back to the
//! raw target geometry with a `Failed` record — a single bad tile costs
//! local mask quality instead of the batch.
//!
//! With [`BatchConfig::checkpoint`] set, every finished job is persisted to
//! a write-ahead log as it completes, and [`run_batch_resume`] can pick a
//! crashed run back up: it verifies the recorded configuration fingerprint,
//! restores every job with a durable successful checkpoint, and re-runs
//! only the rest — producing masks and a journal byte-identical to an
//! uninterrupted run.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ilt_core::{schedules, IltConfig, Stage};
use ilt_field::Field2D;
use ilt_metrics::{EpeChecker, EvalReport};
use ilt_optics::OpticsConfig;

use crate::cache::SimulatorCache;
use crate::cancel::{CancelToken, Progress};
use crate::checkpoint::{config_fingerprint, load_wal, restore_output, CheckpointSink};
use crate::fault::FaultPlan;
use crate::job::IltJob;
use crate::journal::{JobStatus, RunReport};
use crate::pool::{run_jobs_checkpointed, JobOutput, PoolConfig};
use crate::tiler::{SeamPolicy, TileGrid};

/// One input to a batch run: a named target clip.
#[derive(Clone, Debug)]
pub struct BatchCase {
    /// Label used in the journal and output files.
    pub name: String,
    /// Binary target, square power-of-two.
    pub target: Field2D,
    /// Physical pixel pitch of the target.
    pub nm_per_px: f64,
}

/// Full configuration of a batch run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads.
    pub threads: usize,
    /// Tile window size in pixels (power of two).
    pub tile: usize,
    /// Guard band in pixels; targets larger than `tile` are decomposed into
    /// windows overlapping by `2 * halo`.
    pub halo: usize,
    /// Seam handling when stitching tiled masks.
    pub seam: SeamPolicy,
    /// Optics template; `grid` and `nm_per_px` are overridden per job.
    pub optics: OpticsConfig,
    /// ILT hyper-parameters shared by all jobs.
    pub ilt: IltConfig,
    /// Base multi-level schedule; clamped per job to its grid and to the
    /// effective-pitch ceiling.
    pub schedule: Vec<Stage>,
    /// Coarsest admissible effective pixel pitch, nm (see
    /// [`schedules::clamp_effective_pitch`]).
    pub max_eff_nm: f64,
    /// Per-attempt wall-clock budget; `None` waits indefinitely.
    pub timeout: Option<Duration>,
    /// Extra attempts per job after a failure.
    pub max_retries: u32,
    /// Evaluate each stitched full-size mask (builds a full-size simulator;
    /// disable for targets too large to simulate in one FFT).
    pub evaluate_stitched: bool,
    /// After the retry budget, run the degraded low-res fallback pass.
    pub degrade: bool,
    /// Checkpoint directory: when set, finished jobs are persisted to a
    /// write-ahead log there as they complete, enabling crash-safe resume.
    pub checkpoint: Option<PathBuf>,
    /// Deterministic fault injection (chaos testing); empty in production.
    pub faults: FaultPlan,
    /// Cooperative cancellation: set from any thread to stop the run at the
    /// next tile boundary. Tiles not yet started end as `cancelled` records
    /// (their cores fall back to the target geometry when stitching).
    /// Excluded from the configuration fingerprint — it never affects what
    /// a job computes, only whether it runs.
    pub cancel: CancelToken,
    /// Live tile counter: ticks once per executed tile as its outcome lands,
    /// readable from other threads while the batch runs.
    pub progress: Progress,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            tile: 512,
            halo: 64,
            seam: SeamPolicy::Crop,
            optics: OpticsConfig::default(),
            ilt: IltConfig::default(),
            schedule: schedules::our_fast(),
            max_eff_nm: 8.0,
            timeout: None,
            max_retries: 1,
            evaluate_stitched: true,
            degrade: true,
            checkpoint: None,
            faults: FaultPlan::none(),
            cancel: CancelToken::new(),
            progress: Progress::new(),
        }
    }
}

/// Per-case product of a batch run.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Case label.
    pub name: String,
    /// Stitched (or whole-clip) binary mask at the target's grid.
    pub mask: Field2D,
    /// Number of jobs the case decomposed into.
    pub tiles: usize,
    /// Jobs that exhausted retries; their cores fell back to the target.
    pub failed_tiles: usize,
    /// Jobs rescued by the degraded low-res fallback (usable, coarse mask).
    pub degraded_tiles: usize,
    /// Jobs cancelled before running (cores fell back to the target).
    pub cancelled_tiles: usize,
    /// Full-size evaluation of the stitched mask, when requested.
    pub eval: Option<EvalReport>,
}

/// Everything a batch run produces.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The journal: one record per job plus aggregates.
    pub report: RunReport,
    /// Stitched results, one per input case, input order.
    pub cases: Vec<CaseResult>,
    /// Jobs restored from durable checkpoints instead of re-running
    /// (always 0 for a fresh run).
    pub restored_jobs: usize,
}

struct CasePlan {
    first_job: usize,
    jobs: usize,
    grid: Option<TileGrid>,
}

/// Validates a case's geometry and plans its tile decomposition without
/// building any job (no window extraction): the shared front half of
/// [`run_batch_resume`], [`planned_job_list`], and [`assemble_batch`].
fn plan_case(case: &BatchCase, config: &BatchConfig, first_job: usize) -> Result<CasePlan, String> {
    let (rows, cols) = case.target.shape();
    if rows != cols || !rows.is_power_of_two() {
        return Err(format!(
            "case {}: target must be square power-of-two, got {rows}x{cols}",
            case.name
        ));
    }
    if rows <= config.tile {
        Ok(CasePlan { first_job, jobs: 1, grid: None })
    } else {
        let grid = TileGrid::new(rows, config.tile, config.halo)
            .map_err(|e| format!("case {}: {e}", case.name))?;
        Ok(CasePlan { first_job, jobs: grid.len(), grid: Some(grid) })
    }
}

/// One entry of a batch's job plan, as exposed to a dispatcher that farms
/// jobs out (e.g. the cluster coordinator): enough identity to label —
/// and, when a shard is lost, to synthesize a terminal record for — each
/// job without materializing its target window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedJob {
    /// Global job id within the batch (the tile/journal id).
    pub id: usize,
    /// Case label.
    pub case: String,
    /// Tile-grid coordinates, `None` for a whole-clip job.
    pub tile: Option<(usize, usize)>,
    /// Simulation grid of the job's window, px.
    pub grid: usize,
}

/// The full job plan of a batch, in job-id order — exactly the jobs
/// [`run_batch`] would create for the same inputs.
///
/// # Errors
///
/// Rejects the same malformed inputs as [`run_batch`].
pub fn planned_job_list(
    cases: &[BatchCase],
    config: &BatchConfig,
) -> Result<Vec<PlannedJob>, String> {
    let mut out = Vec::new();
    for case in cases {
        let plan = plan_case(case, config, out.len())?;
        match &plan.grid {
            None => out.push(PlannedJob {
                id: plan.first_job,
                case: case.name.clone(),
                tile: None,
                grid: case.target.shape().0,
            }),
            Some(grid) => {
                for spec in grid.specs() {
                    out.push(PlannedJob {
                        id: plan.first_job + spec.index,
                        case: case.name.clone(),
                        tile: Some((spec.grid_row, spec.grid_col)),
                        grid: grid.tile(),
                    });
                }
            }
        }
    }
    Ok(out)
}

/// Runs every case through the tiled ILT pool and stitches the results.
///
/// # Errors
///
/// Returns a message for malformed inputs (non-square or non-power-of-two
/// target, bad tile geometry, zero threads). Per-job failures are *not*
/// errors; they surface as [`CaseResult::failed_tiles`] and journal records.
pub fn run_batch(
    cases: &[BatchCase],
    config: &BatchConfig,
    cache: &SimulatorCache,
) -> Result<BatchOutcome, String> {
    run_batch_resume(cases, config, cache, false)
}

/// [`run_batch`] with optional resume from the checkpoint WAL in
/// [`BatchConfig::checkpoint`].
///
/// On resume the WAL's recorded configuration fingerprint must match the
/// current one; jobs whose checkpoints are durable (WAL success record +
/// mask file matching the recorded hash) are restored without re-running,
/// everything else — failed, missing, or torn — runs again. The merged
/// outcome is byte-identical to an uninterrupted run of the same inputs.
///
/// # Errors
///
/// Everything [`run_batch`] rejects, plus: resume without a checkpoint
/// directory, an unreadable WAL, a fingerprint mismatch, or a WAL that
/// records more jobs than the current configuration plans.
pub fn run_batch_resume(
    cases: &[BatchCase],
    config: &BatchConfig,
    cache: &SimulatorCache,
    resume: bool,
) -> Result<BatchOutcome, String> {
    if config.threads == 0 {
        return Err("batch needs at least one thread".into());
    }
    let mut jobs = Vec::new();
    let mut plans = Vec::with_capacity(cases.len());
    for case in cases {
        let plan = plan_case(case, config, jobs.len())?;
        build_case_jobs(case, &plan, config, &mut jobs);
        plans.push(plan);
    }
    if let Some(max_target) = config.faults.max_job_id() {
        if max_target >= jobs.len() {
            return Err(format!(
                "fault plan targets job {max_target}, but only {} jobs are planned",
                jobs.len()
            ));
        }
    }

    let fingerprint = config_fingerprint(cases, config);
    let mut restored: HashMap<usize, JobOutput> = HashMap::new();
    if resume {
        let dir = config
            .checkpoint
            .as_deref()
            .ok_or("resume requires a checkpoint directory")?;
        let loaded = load_wal(dir)?;
        if loaded.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint mismatch: recorded {:016x}, current {fingerprint:016x} — \
                 resume must use the same cases and result-affecting configuration",
                loaded.fingerprint
            ));
        }
        if let Some((&max_id, _)) = loaded.records.last_key_value() {
            if max_id >= jobs.len() {
                return Err(format!(
                    "checkpoint WAL records job {max_id}, but only {} jobs are planned",
                    jobs.len()
                ));
            }
        }
        for (id, rec) in &loaded.records {
            if let Some(output) = restore_output(dir, rec) {
                restored.insert(*id, output);
            }
        }
    }

    let sink = match &config.checkpoint {
        Some(dir) => Some(
            CheckpointSink::create(dir, fingerprint, jobs.len(), resume, config.faults.clone())
                .map_err(|e| format!("cannot open checkpoint dir {}: {e}", dir.display()))?,
        ),
        None => None,
    };

    let pool = PoolConfig {
        threads: config.threads,
        timeout: config.timeout,
        max_retries: config.max_retries,
        degrade: config.degrade,
        faults: config.faults.clone(),
        cancel: config.cancel.clone(),
        progress: config.progress.clone(),
    };
    let pending: Vec<IltJob> =
        jobs.into_iter().filter(|j| !restored.contains_key(&j.id)).collect();
    let restored_jobs = restored.len();
    let started = Instant::now();
    let fresh = run_jobs_checkpointed(pending, &pool, cache, sink.as_ref());
    let total_wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Merge restored and fresh outputs back into job-id order.
    let mut outputs: Vec<JobOutput> = restored
        .into_values()
        .chain(fresh)
        .collect();
    outputs.sort_by_key(|o| o.record.job_id);

    let mut results = Vec::with_capacity(cases.len());
    for (case, plan) in cases.iter().zip(&plans) {
        results.push(assemble_case(case, plan, &outputs, config, cache)?);
    }
    let report = RunReport {
        threads: config.threads,
        records: outputs.into_iter().map(|o| o.record).collect(),
        total_wall_ms,
    };
    Ok(BatchOutcome { report, cases: results, restored_jobs })
}

/// Materializes a planned case into pool jobs (extracting tile windows),
/// appending them to `jobs` in global job-id order.
fn build_case_jobs(case: &BatchCase, plan: &CasePlan, config: &BatchConfig, jobs: &mut Vec<IltJob>) {
    match &plan.grid {
        None => {
            let rows = case.target.shape().0;
            jobs.push(make_job(plan.first_job, case, None, case.target.clone(), rows, config));
        }
        Some(grid) => {
            for spec in grid.specs() {
                let window = grid.extract(&case.target, &spec);
                jobs.push(make_job(
                    plan.first_job + spec.index,
                    case,
                    Some(spec),
                    window,
                    grid.tile(),
                    config,
                ));
            }
        }
    }
}

/// The outputs of one shard of a case's job plan.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// One output per requested job id, sorted by job id.
    pub outputs: Vec<JobOutput>,
    /// Jobs restored from the shard's checkpoint WAL instead of re-running.
    pub restored_jobs: usize,
}

/// Runs a designated subset of a case's planned tile jobs — the worker half
/// of the cluster's sharded execution. Jobs are planned exactly as
/// [`run_batch`] plans them for the same `(case, config)` (ids are the
/// global batch job ids), then only `job_ids` run; the per-tile results are
/// returned un-stitched for central reassembly via [`assemble_batch`].
///
/// With [`BatchConfig::checkpoint`] set, the shard writes the same WAL
/// [`run_batch_resume`] uses; `resume` restores any job in `job_ids` whose
/// checkpoint is durable, so a restarted worker re-runs only what it lost.
///
/// # Errors
///
/// Everything [`run_batch`] rejects, plus an empty, duplicate, or
/// out-of-range `job_ids`, and the resume errors of [`run_batch_resume`].
pub fn run_shard(
    case: &BatchCase,
    config: &BatchConfig,
    cache: &SimulatorCache,
    job_ids: &[usize],
    resume: bool,
) -> Result<ShardOutcome, String> {
    if config.threads == 0 {
        return Err("shard needs at least one thread".into());
    }
    if job_ids.is_empty() {
        return Err("shard has no job ids".into());
    }
    let cases = std::slice::from_ref(case);
    let plan = plan_case(case, config, 0)?;
    let mut all_jobs = Vec::with_capacity(plan.jobs);
    build_case_jobs(case, &plan, config, &mut all_jobs);
    let mut wanted: Vec<usize> = job_ids.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    if wanted.len() != job_ids.len() {
        return Err("shard job ids contain duplicates".into());
    }
    if let Some(&max) = wanted.last() {
        if max >= all_jobs.len() {
            return Err(format!(
                "shard targets job {max}, but only {} jobs are planned",
                all_jobs.len()
            ));
        }
    }
    if let Some(max_target) = config.faults.max_job_id() {
        if max_target >= all_jobs.len() {
            return Err(format!(
                "fault plan targets job {max_target}, but only {} jobs are planned",
                all_jobs.len()
            ));
        }
    }
    let jobs: Vec<IltJob> =
        all_jobs.into_iter().filter(|j| wanted.binary_search(&j.id).is_ok()).collect();

    let fingerprint = config_fingerprint(cases, config);
    let mut restored: HashMap<usize, JobOutput> = HashMap::new();
    if resume {
        let dir = config
            .checkpoint
            .as_deref()
            .ok_or("resume requires a checkpoint directory")?;
        let loaded = load_wal(dir)?;
        if loaded.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint mismatch: recorded {:016x}, current {fingerprint:016x} — \
                 resume must use the same case and result-affecting configuration",
                loaded.fingerprint
            ));
        }
        for (id, rec) in &loaded.records {
            // Restore only this shard's jobs; a reused checkpoint dir may
            // hold records from a differently-shaped predecessor shard.
            if wanted.binary_search(id).is_ok() {
                if let Some(output) = restore_output(dir, rec) {
                    restored.insert(*id, output);
                }
            }
        }
    }

    let sink = match &config.checkpoint {
        Some(dir) => Some(
            CheckpointSink::create(dir, fingerprint, jobs.len(), resume, config.faults.clone())
                .map_err(|e| format!("cannot open checkpoint dir {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let pool = PoolConfig {
        threads: config.threads,
        timeout: config.timeout,
        max_retries: config.max_retries,
        degrade: config.degrade,
        faults: config.faults.clone(),
        cancel: config.cancel.clone(),
        progress: config.progress.clone(),
    };
    let pending: Vec<IltJob> =
        jobs.into_iter().filter(|j| !restored.contains_key(&j.id)).collect();
    let restored_jobs = restored.len();
    let fresh = run_jobs_checkpointed(pending, &pool, cache, sink.as_ref());
    let mut outputs: Vec<JobOutput> = restored.into_values().chain(fresh).collect();
    outputs.sort_by_key(|o| o.record.job_id);
    Ok(ShardOutcome { outputs, restored_jobs })
}

/// Reassembles a batch outcome from per-job outputs produced elsewhere
/// (e.g. collected from cluster workers via [`run_shard`]): stitches each
/// case with the same halo crop/blend policy [`run_batch`] applies and runs
/// the same optional full-size evaluation, so the result is byte-identical
/// to a single-process run of the same inputs.
///
/// `outputs` must hold exactly one output per planned job, in any order.
///
/// # Errors
///
/// Rejects the malformed inputs [`run_batch`] rejects, plus an output set
/// whose job ids do not match the plan.
pub fn assemble_batch(
    cases: &[BatchCase],
    config: &BatchConfig,
    mut outputs: Vec<JobOutput>,
    cache: &SimulatorCache,
    total_wall_ms: f64,
) -> Result<BatchOutcome, String> {
    let mut plans = Vec::with_capacity(cases.len());
    let mut total = 0usize;
    for case in cases {
        let plan = plan_case(case, config, total)?;
        total += plan.jobs;
        plans.push(plan);
    }
    outputs.sort_by_key(|o| o.record.job_id);
    if outputs.len() != total
        || outputs.iter().enumerate().any(|(i, o)| o.record.job_id != i)
    {
        return Err(format!(
            "assemble: expected outputs for jobs 0..{total}, got {} outputs",
            outputs.len()
        ));
    }
    let mut results = Vec::with_capacity(cases.len());
    for (case, plan) in cases.iter().zip(&plans) {
        results.push(assemble_case(case, plan, &outputs, config, cache)?);
    }
    let report = RunReport {
        threads: config.threads,
        records: outputs.into_iter().map(|o| o.record).collect(),
        total_wall_ms,
    };
    Ok(BatchOutcome { report, cases: results, restored_jobs: 0 })
}

fn make_job(
    id: usize,
    case: &BatchCase,
    spec: Option<crate::tiler::TileSpec>,
    target: Field2D,
    grid: usize,
    config: &BatchConfig,
) -> IltJob {
    let optics = OpticsConfig {
        grid,
        nm_per_px: case.nm_per_px,
        ..config.optics.clone()
    };
    // Coarse stages must stay above both the generic floor and the SOCS
    // kernel support, or the downsampled grid cannot hold one kernel.
    let min_size = 32.max(optics.kernel_size().next_power_of_two());
    let pitched = schedules::clamp_effective_pitch(&config.schedule, case.nm_per_px, config.max_eff_nm);
    let schedule = schedules::clamp_scales(&pitched, grid, min_size);
    IltJob {
        id,
        case: case.name.clone(),
        tile: spec,
        target,
        optics,
        ilt: config.ilt.clone(),
        schedule,
    }
}

fn assemble_case(
    case: &BatchCase,
    plan: &CasePlan,
    outputs: &[JobOutput],
    config: &BatchConfig,
    cache: &SimulatorCache,
) -> Result<CaseResult, String> {
    let slice = &outputs[plan.first_job..plan.first_job + plan.jobs];
    let cancelled_tiles = slice
        .iter()
        .filter(|o| matches!(o.record.status, JobStatus::Cancelled))
        .count();
    let failed_tiles = slice.iter().filter(|o| o.mask.is_none()).count() - cancelled_tiles;
    let degraded_tiles = slice
        .iter()
        .filter(|o| matches!(o.record.status, JobStatus::Degraded(_)))
        .count();
    // A failed tile's core falls back to the target geometry: the
    // uncorrected design is the safest stand-in for a missing correction.
    let binary_target = case.target.threshold(0.5);
    let mask = match &plan.grid {
        None => slice[0].mask.clone().unwrap_or_else(|| binary_target.clone()),
        Some(grid) => {
            let tiles: Vec<Option<Field2D>> = slice.iter().map(|o| o.mask.clone()).collect();
            let stitched = grid.stitch(&tiles, config.seam, &binary_target);
            match config.seam {
                // Blending averages across seams, so re-binarize.
                SeamPolicy::Blend { .. } => stitched.threshold(0.5),
                SeamPolicy::Crop => stitched,
            }
        }
    };
    let eval = if config.evaluate_stitched {
        let n = case.target.shape().0;
        let optics = OpticsConfig {
            grid: n,
            nm_per_px: case.nm_per_px,
            ..config.optics.clone()
        };
        let sim = cache.get_or_build(&optics)?;
        let corners = sim.print_corners(&mask);
        let checker = EpeChecker { nm_per_px: case.nm_per_px, ..EpeChecker::default() };
        let tat = Duration::from_secs_f64(
            slice.iter().map(|o| o.record.wall_ms).sum::<f64>() / 1e3,
        );
        Some(EvalReport::evaluate(
            &binary_target,
            &mask,
            &corners.nominal,
            &corners.inner,
            &corners.outer,
            &checker,
            tat,
        ))
    } else {
        None
    };
    Ok(CaseResult {
        name: case.name.clone(),
        mask,
        tiles: plan.jobs,
        failed_tiles,
        degraded_tiles,
        cancelled_tiles,
        eval,
    })
}

/// Number of pool jobs a case will decompose into under `config` — the
/// denominator of a "tiles done so far" progress report, computable before
/// the batch runs.
///
/// # Errors
///
/// Rejects the same malformed inputs as [`run_batch`] (non-square or
/// non-power-of-two target, bad tile geometry).
pub fn planned_jobs(case: &BatchCase, config: &BatchConfig) -> Result<usize, String> {
    let (rows, cols) = case.target.shape();
    if rows != cols || !rows.is_power_of_two() {
        return Err(format!(
            "case {}: target must be square power-of-two, got {rows}x{cols}",
            case.name
        ));
    }
    if rows <= config.tile {
        return Ok(1);
    }
    let grid = TileGrid::new(rows, config.tile, config.halo)
        .map_err(|e| format!("case {}: {e}", case.name))?;
    Ok(grid.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec};

    fn bar_case(name: &str, n: usize) -> BatchCase {
        let target = Field2D::from_fn(n, n, |r, c| {
            if (n / 4..n / 2).contains(&r) && (n / 8..n - n / 8).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        BatchCase { name: name.into(), target, nm_per_px: 8.0 }
    }

    fn small_config(threads: usize) -> BatchConfig {
        BatchConfig {
            threads,
            tile: 64,
            halo: 8,
            optics: OpticsConfig { num_kernels: 3, ..OpticsConfig::default() },
            schedule: vec![Stage::low_res(2, 3), Stage::high_res(1, 2)],
            evaluate_stitched: false,
            ..BatchConfig::default()
        }
    }

    #[test]
    fn whole_clip_case_runs_one_job() {
        let cache = SimulatorCache::new();
        let out = run_batch(&[bar_case("clip", 64)], &small_config(1), &cache).unwrap();
        assert_eq!(out.report.records.len(), 1);
        assert_eq!(out.cases[0].tiles, 1);
        assert_eq!(out.cases[0].failed_tiles, 0);
        assert_eq!(out.cases[0].degraded_tiles, 0);
        assert_eq!(out.restored_jobs, 0);
        assert_eq!(out.cases[0].mask.shape(), (64, 64));
    }

    #[test]
    fn oversized_case_is_tiled_and_stitched_to_full_size() {
        let cache = SimulatorCache::new();
        let out = run_batch(&[bar_case("big", 128)], &small_config(2), &cache).unwrap();
        assert_eq!(out.cases[0].mask.shape(), (128, 128));
        // 128 px field, 64 px tile, 8 px halo -> 48 px core -> 3x3 tiles.
        assert_eq!(out.cases[0].tiles, 9);
        assert_eq!(out.report.records.len(), 9);
        assert!(out.report.records.iter().all(|r| r.status.is_done()));
        // One shared configuration: every tile job simulates at 64 px.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn mixed_cases_share_one_pool_run() {
        let cache = SimulatorCache::new();
        let cases = [bar_case("a", 64), bar_case("b", 128)];
        let out = run_batch(&cases, &small_config(2), &cache).unwrap();
        assert_eq!(out.cases.len(), 2);
        assert_eq!(out.report.records.len(), 1 + 9);
        // Records stay grouped by case in submission order.
        assert_eq!(out.report.records[0].case, "a");
        assert!(out.report.records[1..].iter().all(|r| r.case == "b"));
    }

    #[test]
    fn injected_failure_falls_back_to_target_geometry() {
        let cache = SimulatorCache::new();
        let mut config = small_config(1);
        config.max_retries = 0;
        // The panic covers every attempt including the degraded fallback,
        // so the tile truly fails and its core reverts to the target.
        config.faults = FaultPlan::none().with(FaultSpec::always(0, FaultKind::Panic));
        let case = bar_case("clip", 64);
        let out = run_batch(&[case.clone()], &config, &cache).unwrap();
        assert_eq!(out.cases[0].failed_tiles, 1);
        assert_eq!(out.report.failed_jobs(), 1);
        assert_eq!(out.cases[0].mask, case.target.threshold(0.5));
    }

    #[test]
    fn persistent_failure_degrades_to_low_res_result() {
        let cache = SimulatorCache::new();
        let mut config = small_config(1);
        config.max_retries = 0;
        // Attempt 1 panics; the degraded fallback (attempt 2) is clean.
        config.faults = FaultPlan::none().with(FaultSpec::at(0, 1, FaultKind::Panic));
        let case = bar_case("clip", 64);
        let out = run_batch(&[case.clone()], &config, &cache).unwrap();
        assert_eq!(out.cases[0].failed_tiles, 0);
        assert_eq!(out.cases[0].degraded_tiles, 1);
        assert_eq!(out.report.degraded_jobs(), 1);
        assert_eq!(out.report.failed_jobs(), 0);
        // The degraded result is a real optimized mask with metrics, and it
        // matches what the coarse-only recipe computes directly.
        let mut coarse = small_config(1);
        coarse.schedule = vec![Stage::low_res(2, 3)];
        let direct = run_batch(&[case], &coarse, &cache).unwrap();
        assert_eq!(
            out.report.records[0].metrics.unwrap().mask_hash,
            direct.report.records[0].metrics.unwrap().mask_hash,
            "degraded fallback is exactly the Eq. 8 coarse pass"
        );
    }

    #[test]
    fn bad_inputs_are_reported() {
        let cache = SimulatorCache::new();
        let config = small_config(1);
        let bad = BatchCase {
            name: "rect".into(),
            target: Field2D::zeros(64, 32),
            nm_per_px: 8.0,
        };
        assert!(run_batch(&[bad], &config, &cache).is_err());
        let mut zero = small_config(1);
        zero.threads = 0;
        assert!(run_batch(&[bar_case("x", 64)], &zero, &cache).is_err());
        let mut inject = small_config(1);
        inject.faults = FaultPlan::none().with(FaultSpec::always(99, FaultKind::Panic));
        assert!(run_batch(&[bar_case("x", 64)], &inject, &cache).is_err());
        let mut resume = small_config(1);
        resume.checkpoint = None;
        assert!(run_batch_resume(&[bar_case("x", 64)], &resume, &cache, true).is_err());
    }

    #[test]
    fn cancelled_batch_reports_cancelled_tiles_and_falls_back_to_target() {
        let cache = SimulatorCache::new();
        let config = small_config(2);
        config.cancel.cancel();
        let case = bar_case("big", 128);
        let out = run_batch(&[case.clone()], &config, &cache).unwrap();
        assert_eq!(out.cases[0].tiles, 9);
        assert_eq!(out.cases[0].cancelled_tiles, 9);
        assert_eq!(out.cases[0].failed_tiles, 0, "cancelled tiles are not failures");
        assert_eq!(out.report.cancelled_jobs(), 9);
        assert_eq!(out.report.failed_jobs(), 0);
        assert_eq!(config.progress.done(), 0);
        assert_eq!(out.cases[0].mask, case.target.threshold(0.5));
        assert_eq!(planned_jobs(&case, &config).unwrap(), 9);
        assert_eq!(planned_jobs(&bar_case("clip", 64), &config).unwrap(), 1);
    }

    #[test]
    fn batch_digest_is_thread_count_invariant() {
        let run = |threads| {
            let cache = SimulatorCache::new();
            run_batch(&[bar_case("big", 128)], &small_config(threads), &cache)
                .unwrap()
                .report
                .digest()
        };
        assert_eq!(run(1), run(3));
    }
}
