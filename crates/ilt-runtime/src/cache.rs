//! A process-wide cache of built lithography simulators.
//!
//! [`ilt_optics::LithoSimulator::new`] is the cold-start of every job: it
//! builds the Hopkins TCC and eigendecomposes it into SOCS kernels, which
//! dwarfs a few ILT iterations at small grids. Batch runs hit a handful of
//! distinct configurations (one per grid size / pixel pitch / optics stack),
//! so the pool shares one simulator per configuration across all worker
//! threads instead of rebuilding per job — the `Rc -> Arc` refactor of the
//! optics crate exists exactly to make this sound.
//!
//! Keying: the full [`OpticsConfig`] (which embeds the grid size and the
//! pixel pitch, and therefore the multi-level scale geometry) rendered
//! through its `Debug` form. Every field of the config is plain data with a
//! deterministic `Debug` representation, so two configs collide exactly
//! when they would build identical simulators.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ilt_optics::{LithoSimulator, OpticsConfig};

type Slot = Arc<OnceLock<Result<Arc<LithoSimulator>, String>>>;

/// A shared, thread-safe simulator cache.
///
/// Cloning is cheap (the store is behind an `Arc`), so hand clones to worker
/// threads freely. Construction of distinct configurations proceeds in
/// parallel; concurrent requests for the *same* configuration block on one
/// builder and then share its result.
///
/// # Examples
///
/// ```
/// use ilt_optics::OpticsConfig;
/// use ilt_runtime::SimulatorCache;
///
/// let cache = SimulatorCache::new();
/// let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
/// let a = cache.get_or_build(&cfg).unwrap();
/// let b = cache.get_or_build(&cfg).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Clone, Default)]
pub struct SimulatorCache {
    slots: Arc<Mutex<HashMap<String, Slot>>>,
    hits: Arc<AtomicUsize>,
    misses: Arc<AtomicUsize>,
}

impl std::fmt::Debug for SimulatorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl SimulatorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache key for a configuration.
    pub fn key(cfg: &OpticsConfig) -> String {
        format!("{cfg:?}")
    }

    /// Returns the simulator for `cfg`, building it on first request.
    ///
    /// # Errors
    ///
    /// Propagates the configuration-validation error of
    /// [`LithoSimulator::new`]; failures are cached too, so a bad
    /// configuration fails fast on every subsequent job instead of
    /// re-attempting the build.
    pub fn get_or_build(&self, cfg: &OpticsConfig) -> Result<Arc<LithoSimulator>, String> {
        let slot: Slot = {
            let mut slots = self.slots.lock().expect("simulator cache lock poisoned");
            slots.entry(Self::key(cfg)).or_default().clone()
        };
        let mut built = false;
        let result = slot.get_or_init(|| {
            built = true;
            LithoSimulator::new(cfg.clone()).map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of distinct configurations ever requested.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("simulator cache lock poisoned").len()
    }

    /// True when no configuration has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from an already-built simulator.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build (or wait on a concurrent build).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn small_cfg(grid: usize) -> OpticsConfig {
        OpticsConfig { grid, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() }
    }

    #[test]
    fn same_config_shares_one_simulator() {
        let cache = SimulatorCache::new();
        let a = cache.get_or_build(&small_cfg(64)).unwrap();
        let b = cache.get_or_build(&small_cfg(64)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }

    #[test]
    fn different_grids_get_distinct_simulators() {
        let cache = SimulatorCache::new();
        let a = cache.get_or_build(&small_cfg(64)).unwrap();
        let b = cache.get_or_build(&small_cfg(32)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalid_config_error_is_cached() {
        let cache = SimulatorCache::new();
        let bad = OpticsConfig { grid: 100, ..small_cfg(64) }; // not a power of two
        assert!(cache.get_or_build(&bad).is_err());
        assert!(cache.get_or_build(&bad).is_err());
        assert_eq!(cache.misses(), 1, "the failed build must not be retried");
    }

    #[test]
    fn concurrent_requests_converge_on_one_instance() {
        let cache = SimulatorCache::new();
        let sims: Vec<_> = thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    s.spawn(move || cache.get_or_build(&small_cfg(64)).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for sim in &sims[1..] {
            assert!(Arc::ptr_eq(&sims[0], sim));
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
