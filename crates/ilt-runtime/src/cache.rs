//! A process-wide, capacity-bounded cache of built lithography simulators.
//!
//! [`ilt_optics::LithoSimulator::new`] is the cold-start of every job: it
//! builds the Hopkins TCC and eigendecomposes it into SOCS kernels, which
//! dwarfs a few ILT iterations at small grids. Batch runs hit a handful of
//! distinct configurations (one per grid size / pixel pitch / optics stack),
//! so the pool shares one simulator per configuration across all worker
//! threads instead of rebuilding per job — the `Rc -> Arc` refactor of the
//! optics crate exists exactly to make this sound.
//!
//! A long-lived server cannot afford the batch engine's original unbounded
//! map: every distinct per-request configuration would pin a simulator
//! (kernels are O(grid²) complex samples each) for the life of the process.
//! The cache therefore takes an optional capacity and evicts the least
//! recently used entry when it overflows; hit/miss/eviction counters feed
//! the server's `/metrics` endpoint.
//!
//! Keying: the full [`OpticsConfig`] (which embeds the grid size and the
//! pixel pitch, and therefore the multi-level scale geometry) rendered
//! through its `Debug` form. Every field of the config is plain data with a
//! deterministic `Debug` representation, so two configs collide exactly
//! when they would build identical simulators.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ilt_optics::{LithoSimulator, OpticsConfig};

type Slot = Arc<OnceLock<Result<Arc<LithoSimulator>, String>>>;

struct Entry {
    slot: Slot,
    /// Logical clock value of the most recent request; smallest = LRU.
    last_used: u64,
}

#[derive(Default)]
struct Store {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A shared, thread-safe simulator cache with optional LRU bounding.
///
/// Cloning is cheap (the store is behind an `Arc`), so hand clones to worker
/// threads freely. Construction of distinct configurations proceeds in
/// parallel; concurrent requests for the *same* configuration block on one
/// builder and then share its result. Eviction drops only the cache's
/// reference: jobs holding an `Arc` to an evicted simulator keep using it,
/// and an in-flight build of an evicted slot completes harmlessly.
///
/// # Examples
///
/// ```
/// use ilt_optics::OpticsConfig;
/// use ilt_runtime::SimulatorCache;
///
/// let cache = SimulatorCache::with_capacity(8);
/// let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
/// let a = cache.get_or_build(&cfg).unwrap();
/// let b = cache.get_or_build(&cfg).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.evictions(), 0);
/// ```
#[derive(Clone, Default)]
pub struct SimulatorCache {
    store: Arc<Mutex<Store>>,
    capacity: Option<usize>,
    hits: Arc<AtomicUsize>,
    misses: Arc<AtomicUsize>,
    evictions: Arc<AtomicUsize>,
    /// Fault hook: the next `n` builds fail with a typed `io:` error
    /// *without* caching the failure (a transient outage, not a bad
    /// configuration).
    fail_builds: Arc<AtomicUsize>,
}

impl std::fmt::Debug for SimulatorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl SimulatorCache {
    /// Creates an empty, unbounded cache (the batch engine's default: a
    /// one-shot run touches a small, known set of configurations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` simulators,
    /// evicting least-recently-used entries beyond that. A capacity of 0 is
    /// clamped to 1 (the entry being requested can never be evicted by its
    /// own insertion).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { capacity: Some(capacity.max(1)), ..Self::default() }
    }

    /// The configured bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The cache key for a configuration.
    pub fn key(cfg: &OpticsConfig) -> String {
        format!("{cfg:?}")
    }

    /// Returns the simulator for `cfg`, building it on first request.
    ///
    /// # Errors
    ///
    /// Propagates the configuration-validation error of
    /// [`LithoSimulator::new`]; failures are cached too, so a bad
    /// configuration fails fast on every subsequent job instead of
    /// re-attempting the build (until evicted like any other entry).
    pub fn get_or_build(&self, cfg: &OpticsConfig) -> Result<Arc<LithoSimulator>, String> {
        // Injected transient failure: consume one budget unit and fail
        // without touching the map, so the next request builds normally —
        // exactly how a transient allocation or I/O failure behaves.
        if self
            .fail_builds
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err("io: injected simulator build failure".into());
        }
        let key = Self::key(cfg);
        let slot: Slot = {
            let mut store = self.store.lock().expect("simulator cache lock poisoned");
            store.tick += 1;
            let tick = store.tick;
            let slot = {
                let entry = store
                    .map
                    .entry(key.clone())
                    .or_insert_with(|| Entry { slot: Slot::default(), last_used: 0 });
                entry.last_used = tick;
                entry.slot.clone()
            };
            if let Some(cap) = self.capacity {
                while store.map.len() > cap {
                    let victim = store
                        .map
                        .iter()
                        .filter(|(k, _)| **k != key)
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone());
                    match victim {
                        Some(v) => {
                            store.map.remove(&v);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            }
            slot
        };
        let mut built = false;
        let result = slot.get_or_init(|| {
            built = true;
            LithoSimulator::new(cfg.clone()).map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of configurations currently resident.
    pub fn len(&self) -> usize {
        self.store.lock().expect("simulator cache lock poisoned").map.len()
    }

    /// True when no configuration is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from an already-built simulator.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build (or wait on a concurrent build).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU policy since construction.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fault hook: makes the next `n` [`SimulatorCache::get_or_build`]
    /// calls fail with a transient (uncached) `io:` error. Deterministic
    /// chaos for the job retry path that crosses the cache.
    pub fn inject_build_failures(&self, n: usize) {
        self.fail_builds.fetch_add(n, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn small_cfg(grid: usize) -> OpticsConfig {
        OpticsConfig { grid, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() }
    }

    #[test]
    fn same_config_shares_one_simulator() {
        let cache = SimulatorCache::new();
        let a = cache.get_or_build(&small_cfg(64)).unwrap();
        let b = cache.get_or_build(&small_cfg(64)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn different_grids_get_distinct_simulators() {
        let cache = SimulatorCache::new();
        let a = cache.get_or_build(&small_cfg(64)).unwrap();
        let b = cache.get_or_build(&small_cfg(32)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalid_config_error_is_cached() {
        let cache = SimulatorCache::new();
        let bad = OpticsConfig { grid: 100, ..small_cfg(64) }; // not a power of two
        assert!(cache.get_or_build(&bad).is_err());
        assert!(cache.get_or_build(&bad).is_err());
        assert_eq!(cache.misses(), 1, "the failed build must not be retried");
    }

    #[test]
    fn concurrent_requests_converge_on_one_instance() {
        let cache = SimulatorCache::new();
        let sims: Vec<_> = thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    s.spawn(move || cache.get_or_build(&small_cfg(64)).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for sim in &sims[1..] {
            assert!(Arc::ptr_eq(&sims[0], sim));
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn capacity_bounds_residency_and_counts_evictions() {
        let cache = SimulatorCache::with_capacity(2);
        cache.get_or_build(&small_cfg(32)).unwrap(); // miss: {32}
        cache.get_or_build(&small_cfg(64)).unwrap(); // miss: {32, 64}
        assert_eq!(cache.len(), 2);
        cache.get_or_build(&small_cfg(128)).unwrap(); // miss, evicts 32 (LRU)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // 64 survived (more recently used than 32 was); no rebuild.
        cache.get_or_build(&small_cfg(64)).unwrap();
        assert_eq!(cache.hits(), 1);
        // 32 was evicted: requesting it again is a fresh build and evicts
        // the now-least-recent 128.
        cache.get_or_build(&small_cfg(32)).unwrap();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn touching_an_entry_refreshes_its_lru_position() {
        let cache = SimulatorCache::with_capacity(2);
        cache.get_or_build(&small_cfg(32)).unwrap();
        cache.get_or_build(&small_cfg(64)).unwrap();
        cache.get_or_build(&small_cfg(32)).unwrap(); // refresh 32: 64 is now LRU
        cache.get_or_build(&small_cfg(128)).unwrap(); // evicts 64
        assert_eq!(cache.evictions(), 1);
        cache.get_or_build(&small_cfg(32)).unwrap(); // still resident
        assert_eq!(cache.hits(), 2);
        cache.get_or_build(&small_cfg(64)).unwrap(); // evicted: rebuild
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn injected_build_failures_are_transient_and_uncached() {
        let cache = SimulatorCache::new();
        cache.inject_build_failures(2);
        let err = cache.get_or_build(&small_cfg(64)).unwrap_err();
        assert!(err.starts_with("io:"), "{err}");
        assert!(cache.get_or_build(&small_cfg(64)).is_err());
        assert!(cache.is_empty(), "transient failures must not be cached");
        // Budget spent: the same configuration now builds normally.
        assert!(cache.get_or_build(&small_cfg(64)).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = SimulatorCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(1));
        cache.get_or_build(&small_cfg(32)).unwrap();
        cache.get_or_build(&small_cfg(64)).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }
}
