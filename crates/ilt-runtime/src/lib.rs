//! Parallel tiled full-chip ILT execution engine.
//!
//! The numerical crates optimize one clip at a time; this crate turns them
//! into a batch system able to process layouts wider than one FFT and many
//! cases at once, using only `std` concurrency:
//!
//! - [`TileGrid`] partitions a large target into overlapping windows whose
//!   cores tile the field exactly, and stitches per-tile masks back with a
//!   hard crop or a linear seam blend ([`SeamPolicy`]).
//! - [`run_jobs`] drains a queue of [`IltJob`]s with N workers, isolating
//!   panics per attempt, enforcing per-attempt timeouts, retrying a bounded
//!   number of times, and returning results in submission order so output
//!   is deterministic for any thread count.
//! - [`SimulatorCache`] shares one built [`ilt_optics::LithoSimulator`] per
//!   optics configuration across every worker.
//! - [`RunReport`] journals one [`JobRecord`] per job (metrics, attempts,
//!   per-stage wall-times, mask hash) and serializes to JSON Lines with all
//!   nondeterministic timing fields at the tail.
//! - [`run_batch`] glues the above into the `ilt batch` command.
//!
//! ```
//! use ilt_field::Field2D;
//! use ilt_runtime::{run_batch, BatchCase, BatchConfig, SimulatorCache};
//!
//! let case = BatchCase {
//!     name: "demo".into(),
//!     target: Field2D::from_fn(64, 64, |r, c| {
//!         if (24..40).contains(&r) && (8..56).contains(&c) { 1.0 } else { 0.0 }
//!     }),
//!     nm_per_px: 8.0,
//! };
//! let config = BatchConfig {
//!     threads: 2,
//!     tile: 64,
//!     halo: 8,
//!     optics: ilt_optics::OpticsConfig { num_kernels: 3, ..Default::default() },
//!     schedule: vec![ilt_core::Stage::low_res(2, 2)],
//!     evaluate_stitched: false,
//!     ..BatchConfig::default()
//! };
//! let out = run_batch(&[case], &config, &SimulatorCache::new()).unwrap();
//! assert_eq!(out.report.records.len(), 1);
//! assert_eq!(out.report.failed_jobs(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
mod cancel;
mod checkpoint;
mod fault;
mod job;
mod journal;
mod pool;
mod tiler;

pub use batch::{
    assemble_batch, planned_job_list, planned_jobs, run_batch, run_batch_resume, run_shard,
    BatchCase, BatchConfig, BatchOutcome, CaseResult, PlannedJob, ShardOutcome,
};
pub use cache::SimulatorCache;
pub use cancel::{CancelToken, Progress};
pub use checkpoint::{
    config_fingerprint, json_field_f64, json_field_raw, json_field_str, json_field_u64,
    json_unescape, load_mask, load_wal, mask_file_name, parse_wal_record, restore_output,
    write_atomic, CheckpointSink, LoadedRecord, LoadedRun, WAL_FILE,
};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use job::{run_attempt, run_degraded_attempt, IltJob, JobSuccess};
pub use journal::{
    failure_kind, field_hash, fnv1a64, json_escape, json_f64, JobMetrics, JobRecord, JobStatus,
    RunReport, StageTimes,
};
pub use pool::{
    run_jobs, run_jobs_checkpointed, ClassQueues, JobOutput, PoolConfig, PriorityClass,
};
pub use tiler::{SeamPolicy, TileGrid, TileSpec};
