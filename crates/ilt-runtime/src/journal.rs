//! The run journal: per-job measurement records and their JSON Lines form.
//!
//! Every batch run produces one [`JobRecord`] per job — what ran, where its
//! tile sits, how many attempts it took, per-stage wall-times and the
//! contest metrics of its result — accumulated into a [`RunReport`]. The
//! report serializes to JSON Lines through a small hand-rolled writer (the
//! workspace is dependency-free by policy, so no serde) and prints an
//! aggregate table. The rebar lesson (BurntSushi's benchmark harness)
//! applied here: measurements are only trustworthy when captured per task,
//! at the moment of execution, into a machine-diffable artifact — so every
//! future performance PR gets its baseline from this journal, not from
//! ad-hoc stopwatch prints.
//!
//! Determinism contract: everything in a record except the `*_ms` timing
//! fields is a pure function of the job's inputs. `RunReport::digest`
//! collects exactly the deterministic fields, which is what the
//! `--threads 1` vs `--threads N` equivalence test and `verify_runtime.sh`
//! compare.

use std::fmt;
use std::io::Write;
use std::path::Path;

use ilt_field::Field2D;

/// Terminal state of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The job produced a mask and metrics.
    Done,
    /// The job exhausted its retry budget but the degraded fallback — the
    /// low-resolution (Eq. 8 scale-`s`) pass — succeeded; the reason the
    /// full recipe kept failing is recorded. The mask is usable but coarse.
    Degraded(String),
    /// The job exhausted its retry budget; the reason of the last attempt.
    Failed(String),
    /// The run was cancelled before this job started; no attempt ran and
    /// there is no mask. Cancelled jobs are terminal but not failures.
    Cancelled,
}

impl JobStatus {
    /// True for [`JobStatus::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, JobStatus::Done)
    }

    /// True when the job ended with a usable mask ([`JobStatus::Done`] or
    /// [`JobStatus::Degraded`]).
    pub fn has_mask(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Degraded(_))
    }
}

/// Classifies a failure reason into its typed kind, the label used by the
/// journal summary and the server's `/metrics` failure counters: `panic`,
/// `timeout`, `numeric`, `io`, or `other`.
pub fn failure_kind(reason: &str) -> &'static str {
    if reason.starts_with("panic") {
        "panic"
    } else if reason.contains("timed out") {
        "timeout"
    } else if reason.starts_with("numeric") {
        "numeric"
    } else if reason.starts_with("io") {
        "io"
    } else {
        "other"
    }
}

/// Wall-time of each stage of a job, milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// Simulator acquisition (≈0 on a cache hit, the TCC+eig build on a
    /// miss).
    pub sim_ms: f64,
    /// The multi-level optimization itself.
    pub optimize_ms: f64,
    /// Corner prints + metric evaluation of the finished tile.
    pub evaluate_ms: f64,
}

/// Result metrics of a finished job (the contest columns plus provenance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobMetrics {
    /// Squared L2 loss in nm².
    pub l2_nm2: f64,
    /// Process-variation band in nm².
    pub pvband_nm2: f64,
    /// EPE violation count.
    pub epe_violations: usize,
    /// Mask fracturing shot count.
    pub shots: usize,
    /// Gradient iterations actually executed.
    pub iterations: usize,
    /// FNV-1a hash of the final mask bits (bit-exact determinism witness).
    pub mask_hash: u64,
}

/// One journal line: the full measurement record of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Dense job id; also the result-ordering key.
    pub job_id: usize,
    /// Name of the case the job belongs to.
    pub case: String,
    /// Tile-grid coordinates `(row, col)`; `None` for a whole-clip job.
    pub tile: Option<(usize, usize)>,
    /// Grid size the job simulated at.
    pub grid: usize,
    /// 1-based number of attempts consumed (>1 means retries happened).
    pub attempts: u32,
    /// Terminal state.
    pub status: JobStatus,
    /// Metrics of the final mask (`None` when failed).
    pub metrics: Option<JobMetrics>,
    /// Per-stage wall-times of the successful attempt (or the last one).
    pub times: StageTimes,
    /// End-to-end wall-time of the job including retries, ms.
    pub wall_ms: f64,
}

/// The measurement record of a whole batch run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Per-job records, sorted by `job_id`.
    pub records: Vec<JobRecord>,
    /// Wall-time of the whole pool run, ms.
    pub total_wall_ms: f64,
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bit-exact hash of a field (shape and pixel bit patterns).
pub fn field_hash(f: &Field2D) -> u64 {
    let (rows, cols) = f.shape();
    let dims = [rows as u64, cols as u64];
    fnv1a64(
        dims.iter()
            .flat_map(|d| d.to_le_bytes())
            .chain(f.as_slice().iter().flat_map(|v| v.to_bits().to_le_bytes())),
    )
}

/// Escapes a string for embedding in a JSON string literal.
///
/// Covers the full set RFC 8259 requires: `"` and `\`, the short escapes
/// `\b \f \n \r \t`, and `\u00XX` for every remaining control character in
/// U+0000..=U+001F. This is the one escaping helper shared by every
/// hand-rolled JSON producer in the workspace (`ilt-runtime`'s journal and
/// `ilt-server`'s HTTP responses) — do not fork it.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip JSON number for an `f64` (no NaN/inf in records by
/// construction; they are mapped to `null` defensively).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".into()
    }
}

impl JobRecord {
    /// The record as one JSON object (no trailing newline), timing included.
    pub fn to_json(&self) -> String {
        self.to_json_opts(true)
    }

    /// The record as one JSON object (no trailing newline).
    ///
    /// Key order is fixed, with all nondeterministic timing fields at the
    /// tail. With `timing == false` the `*_ms` fields are omitted entirely,
    /// so the line is a pure function of the job's inputs — determinism
    /// checks diff such journals directly instead of text-stripping the
    /// tail.
    pub fn to_json_opts(&self, timing: bool) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"job_id\":{},\"case\":\"{}\",",
            self.job_id,
            json_escape(&self.case)
        ));
        match self.tile {
            Some((r, c)) => s.push_str(&format!("\"tile\":[{r},{c}],")),
            None => s.push_str("\"tile\":null,"),
        }
        s.push_str(&format!("\"grid\":{},\"attempts\":{},", self.grid, self.attempts));
        match &self.status {
            JobStatus::Done => s.push_str("\"status\":\"done\","),
            JobStatus::Degraded(why) => s.push_str(&format!(
                "\"status\":\"degraded\",\"reason\":\"{}\",",
                json_escape(why)
            )),
            JobStatus::Failed(why) => {
                s.push_str(&format!("\"status\":\"failed\",\"reason\":\"{}\",", json_escape(why)))
            }
            JobStatus::Cancelled => s.push_str("\"status\":\"cancelled\","),
        }
        match &self.metrics {
            Some(m) => s.push_str(&format!(
                "\"l2_nm2\":{},\"pvband_nm2\":{},\"epe\":{},\"shots\":{},\"iterations\":{},\"mask_hash\":\"{:016x}\",",
                json_f64(m.l2_nm2),
                json_f64(m.pvband_nm2),
                m.epe_violations,
                m.shots,
                m.iterations,
                m.mask_hash,
            )),
            None => s.push_str("\"metrics\":null,"),
        }
        if timing {
            s.push_str(&format!(
                "\"sim_ms\":{},\"optimize_ms\":{},\"evaluate_ms\":{},\"wall_ms\":{}}}",
                json_f64(self.times.sim_ms),
                json_f64(self.times.optimize_ms),
                json_f64(self.times.evaluate_ms),
                json_f64(self.wall_ms),
            ));
        } else {
            s.pop(); // the trailing comma after the last deterministic field
            s.push('}');
        }
        s
    }

    /// The record as one write-ahead-log line: the full timed record plus a
    /// `"ckpt"` field naming the durable mask file (or `null` when the
    /// result was not persisted). Parsed back by the checkpoint loader.
    pub fn to_json_wal(&self, ckpt: Option<&str>) -> String {
        let mut s = self.to_json_opts(true);
        s.pop(); // the closing brace
        match ckpt {
            Some(name) => s.push_str(&format!(",\"ckpt\":\"{}\"}}", json_escape(name))),
            None => s.push_str(",\"ckpt\":null}"),
        }
        s
    }

    /// The deterministic fields only — identical across thread counts.
    pub fn digest(&self) -> String {
        let metrics = match &self.metrics {
            Some(m) => format!(
                "l2={:?} pvb={:?} epe={} shots={} iters={} mask={:016x}",
                m.l2_nm2, m.pvband_nm2, m.epe_violations, m.shots, m.iterations, m.mask_hash
            ),
            None => "none".into(),
        };
        format!(
            "job={} case={} tile={:?} grid={} status={} {}",
            self.job_id,
            self.case,
            self.tile,
            self.grid,
            match &self.status {
                JobStatus::Done => "done".into(),
                JobStatus::Degraded(why) => format!("degraded({why})"),
                JobStatus::Failed(why) => format!("failed({why})"),
                JobStatus::Cancelled => "cancelled".into(),
            },
            metrics
        )
    }
}

impl RunReport {
    /// Number of jobs that ended [`JobStatus::Failed`].
    pub fn failed_jobs(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Failed(_)))
            .count()
    }

    /// Number of jobs that ended [`JobStatus::Degraded`] (low-res fallback).
    pub fn degraded_jobs(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Degraded(_)))
            .count()
    }

    /// Number of jobs that ended [`JobStatus::Cancelled`] (never ran).
    pub fn cancelled_jobs(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Cancelled))
            .count()
    }

    /// Number of jobs whose terminal (or degrading) reason classifies as
    /// the typed `"numeric"` failure — the NaN/Inf guard tripping.
    pub fn numeric_failures(&self) -> usize {
        self.records
            .iter()
            .filter(|r| match &r.status {
                JobStatus::Failed(why) | JobStatus::Degraded(why) => {
                    failure_kind(why) == "numeric"
                }
                JobStatus::Done | JobStatus::Cancelled => false,
            })
            .count()
    }

    /// Total attempts beyond the first, across all jobs.
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.attempts.saturating_sub(1))).sum()
    }

    /// Sum of per-job wall-times — the serial cost of the work.
    pub fn serial_ms(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ms).sum()
    }

    /// Achieved parallel speedup: serial cost over pool wall-time.
    pub fn speedup(&self) -> f64 {
        if self.total_wall_ms > 0.0 {
            self.serial_ms() / self.total_wall_ms
        } else {
            1.0
        }
    }

    /// The whole report as JSON Lines: one object per job, then a summary
    /// object (`"kind":"summary"`), timing included.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_opts(true)
    }

    /// [`RunReport::to_jsonl`] with timing optionally omitted.
    ///
    /// With `timing == false` every record drops its `*_ms` tail and the
    /// summary drops `threads` and the aggregate wall-times, leaving only
    /// fields that are identical across thread counts — two such journals
    /// from equivalent runs must compare byte-for-byte equal.
    pub fn to_jsonl_opts(&self, timing: bool) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_opts(timing));
            out.push('\n');
        }
        if timing {
            out.push_str(&format!(
                "{{\"kind\":\"summary\",\"threads\":{},\"jobs\":{},\"failed\":{},\"degraded\":{},\"numeric\":{},\"retries\":{},\"serial_ms\":{},\"total_wall_ms\":{},\"speedup\":{}}}\n",
                self.threads,
                self.records.len(),
                self.failed_jobs(),
                self.degraded_jobs(),
                self.numeric_failures(),
                self.total_retries(),
                json_f64(self.serial_ms()),
                json_f64(self.total_wall_ms),
                json_f64(self.speedup()),
            ));
        } else {
            out.push_str(&format!(
                "{{\"kind\":\"summary\",\"jobs\":{},\"failed\":{},\"degraded\":{},\"numeric\":{},\"retries\":{}}}\n",
                self.records.len(),
                self.failed_jobs(),
                self.degraded_jobs(),
                self.numeric_failures(),
                self.total_retries(),
            ));
        }
        out
    }

    /// Writes [`RunReport::to_jsonl`] to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.write_jsonl_opts(path, true)
    }

    /// Writes [`RunReport::to_jsonl_opts`] to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_jsonl_opts(&self, path: impl AsRef<Path>, timing: bool) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl_opts(timing).as_bytes())
    }

    /// Deterministic digest of the run (job order, masks, metrics — no
    /// timings). Equal digests mean bit-identical results.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.digest());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for RunReport {
    /// The aggregate table printed after a batch run.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:<14} {:>11} {:>6} {:>10} {:>10} {:>4} {:>6} {:>4} {:>9}",
            "job", "case", "tile", "grid", "L2 nm2", "PVB nm2", "EPE", "shots", "try", "wall ms"
        )?;
        for r in &self.records {
            let tile = match r.tile {
                Some((tr, tc)) => format!("({tr},{tc})"),
                None => "clip".into(),
            };
            match (&r.status, &r.metrics) {
                (JobStatus::Done, Some(m)) => writeln!(
                    f,
                    "{:>4} {:<14} {:>11} {:>6} {:>10.0} {:>10.0} {:>4} {:>6} {:>4} {:>9.1}",
                    r.job_id,
                    r.case,
                    tile,
                    r.grid,
                    m.l2_nm2,
                    m.pvband_nm2,
                    m.epe_violations,
                    m.shots,
                    r.attempts,
                    r.wall_ms
                )?,
                (JobStatus::Degraded(why), Some(m)) => writeln!(
                    f,
                    "{:>4} {:<14} {:>11} {:>6} {:>10.0} {:>10.0} {:>4} {:>6} {:>4} {:>9.1} DEGRADED: {}",
                    r.job_id,
                    r.case,
                    tile,
                    r.grid,
                    m.l2_nm2,
                    m.pvband_nm2,
                    m.epe_violations,
                    m.shots,
                    r.attempts,
                    r.wall_ms,
                    why
                )?,
                (JobStatus::Failed(why), _) => writeln!(
                    f,
                    "{:>4} {:<14} {:>11} {:>6} FAILED after {} attempts: {}",
                    r.job_id, r.case, tile, r.grid, r.attempts, why
                )?,
                (JobStatus::Cancelled, _) => writeln!(
                    f,
                    "{:>4} {:<14} {:>11} {:>6} CANCELLED before any attempt ran",
                    r.job_id, r.case, tile, r.grid
                )?,
                (JobStatus::Done | JobStatus::Degraded(_), None) => writeln!(
                    f,
                    "{:>4} {:<14} {:>11} {:>6} done (no metrics)",
                    r.job_id, r.case, tile, r.grid
                )?,
            }
        }
        writeln!(
            f,
            "{} jobs on {} threads: {} failed, {} degraded, {} retries, serial {:.1} ms, wall {:.1} ms, speedup {:.2}x",
            self.records.len(),
            self.threads,
            self.failed_jobs(),
            self.degraded_jobs(),
            self.total_retries(),
            self.serial_ms(),
            self.total_wall_ms,
            self.speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, status: JobStatus) -> JobRecord {
        JobRecord {
            job_id: id,
            case: "m1_case1".into(),
            tile: Some((0, 192)),
            grid: 256,
            attempts: 1,
            status,
            metrics: Some(JobMetrics {
                l2_nm2: 41250.0,
                pvband_nm2: 8000.5,
                epe_violations: 2,
                shots: 311,
                iterations: 40,
                mask_hash: 0xdead_beef_cafe_f00d,
            }),
            times: StageTimes { sim_ms: 12.0, optimize_ms: 840.0, evaluate_ms: 31.0 },
            wall_ms: 883.0,
        }
    }

    #[test]
    fn json_line_is_wellformed_and_ordered() {
        let line = record(3, JobStatus::Done).to_json();
        assert!(line.starts_with("{\"job_id\":3,\"case\":\"m1_case1\","));
        assert!(line.contains("\"tile\":[0,192]"));
        assert!(line.contains("\"mask_hash\":\"deadbeefcafef00d\""));
        // Timing fields must come after all deterministic fields.
        let det = line.find("\"mask_hash\"").unwrap();
        assert!(line.find("\"sim_ms\"").unwrap() > det);
        assert!(line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn failed_record_carries_reason() {
        let mut r = record(1, JobStatus::Failed("panic: boom \"quoted\"".into()));
        r.metrics = None;
        let line = r.to_json();
        assert!(line.contains("\"status\":\"failed\""));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\"metrics\":null"));
    }

    #[test]
    fn no_timing_json_omits_every_nondeterministic_field() {
        let mut a = record(0, JobStatus::Done);
        let mut b = record(0, JobStatus::Done);
        a.wall_ms = 1.0;
        b.wall_ms = 99.0;
        b.times = StageTimes { sim_ms: 7.0, optimize_ms: 9.0, evaluate_ms: 3.0 };
        assert_eq!(a.to_json_opts(false), b.to_json_opts(false));
        let line = a.to_json_opts(false);
        assert!(!line.contains("_ms\""), "{line}");
        assert!(line.ends_with("\"mask_hash\":\"deadbeefcafef00d\"}"), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        // A failed record (metrics:null tail) stays well-formed too.
        let mut f = record(1, JobStatus::Failed("x".into()));
        f.metrics = None;
        assert!(f.to_json_opts(false).ends_with("\"metrics\":null}"));
    }

    #[test]
    fn no_timing_report_is_thread_count_invariant() {
        let report = |threads, wall| RunReport {
            threads,
            records: vec![record(0, JobStatus::Done)],
            total_wall_ms: wall,
        };
        assert_eq!(report(1, 10.0).to_jsonl_opts(false), report(4, 99.0).to_jsonl_opts(false));
        let jsonl = report(1, 10.0).to_jsonl_opts(false);
        assert!(jsonl.lines().last().unwrap().contains("\"kind\":\"summary\""));
        assert!(!jsonl.contains("_ms\""));
        assert!(!jsonl.contains("threads"));
    }

    #[test]
    fn escape_covers_every_control_character() {
        for cp in 0u32..0x20 {
            let ch = char::from_u32(cp).unwrap();
            let escaped = json_escape(&ch.to_string());
            assert!(escaped.is_ascii(), "U+{cp:04X} -> {escaped:?}");
            assert!(
                escaped.starts_with('\\'),
                "U+{cp:04X} must be escaped, got {escaped:?}"
            );
        }
        assert_eq!(json_escape("\u{0008}\u{000c}"), "\\b\\f");
        assert_eq!(json_escape("\u{0000}\u{001f}"), "\\u0000\\u001f");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        // Non-control unicode passes through untouched.
        assert_eq!(json_escape("λ=193nm"), "λ=193nm");
    }

    #[test]
    fn digest_ignores_timing() {
        let mut a = record(0, JobStatus::Done);
        let mut b = record(0, JobStatus::Done);
        a.wall_ms = 1.0;
        b.wall_ms = 99.0;
        b.times.optimize_ms = 1e6;
        assert_eq!(a.digest(), b.digest());
        b.metrics.as_mut().unwrap().mask_hash ^= 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn report_aggregates() {
        let report = RunReport {
            threads: 4,
            records: vec![record(0, JobStatus::Done), {
                let mut r = record(1, JobStatus::Failed("timeout".into()));
                r.attempts = 3;
                r
            }],
            total_wall_ms: 1000.0,
        };
        assert_eq!(report.failed_jobs(), 1);
        assert_eq!(report.total_retries(), 2);
        assert!((report.serial_ms() - 1766.0).abs() < 1e-9);
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3, "2 jobs + summary");
        assert!(jsonl.lines().last().unwrap().contains("\"kind\":\"summary\""));
        let table = report.to_string();
        assert!(table.contains("FAILED after 3 attempts"));
    }

    #[test]
    fn field_hash_is_bit_exact() {
        let a = Field2D::filled(4, 4, 0.5);
        let mut b = Field2D::filled(4, 4, 0.5);
        assert_eq!(field_hash(&a), field_hash(&b));
        b[(2, 2)] = 0.5 + f64::EPSILON;
        assert_ne!(field_hash(&a), field_hash(&b));
        // Shape participates: a 1x4 and 4x1 of equal data differ.
        let r = Field2D::filled(1, 4, 1.0);
        let c = Field2D::filled(4, 1, 1.0);
        assert_ne!(field_hash(&r), field_hash(&c));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a64([b'a']), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn degraded_record_keeps_metrics_and_reason() {
        let r = record(2, JobStatus::Degraded("numeric: NaN in tile".into()));
        let line = r.to_json();
        assert!(line.contains("\"status\":\"degraded\""));
        assert!(line.contains("\"reason\":\"numeric: NaN in tile\""));
        assert!(line.contains("\"mask_hash\""), "degraded results carry metrics");
        assert!(r.status.has_mask() && !r.status.is_done());
        assert!(r.digest().contains("degraded(numeric"));
        let report = RunReport { threads: 1, records: vec![r], total_wall_ms: 1.0 };
        assert_eq!(report.failed_jobs(), 0);
        assert_eq!(report.degraded_jobs(), 1);
        assert_eq!(report.numeric_failures(), 1);
        assert!(report.to_jsonl_opts(false).contains("\"degraded\":1,\"numeric\":1"));
    }

    #[test]
    fn cancelled_record_serializes_and_counts() {
        let mut r = record(5, JobStatus::Cancelled);
        r.metrics = None;
        let line = r.to_json();
        assert!(line.contains("\"status\":\"cancelled\""), "{line}");
        assert!(line.contains("\"metrics\":null"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(!r.status.has_mask() && !r.status.is_done());
        assert!(r.digest().contains("status=cancelled"));
        let report = RunReport { threads: 1, records: vec![r], total_wall_ms: 1.0 };
        assert_eq!(report.failed_jobs(), 0);
        assert_eq!(report.cancelled_jobs(), 1);
        assert_eq!(report.numeric_failures(), 0);
        assert!(report.to_string().contains("CANCELLED"));
    }

    #[test]
    fn failure_kinds_classify() {
        assert_eq!(failure_kind("panic: injected failure"), "panic");
        assert_eq!(failure_kind("timed out after 1.0s (attempt thread abandoned)"), "timeout");
        assert_eq!(failure_kind("numeric: non-finite values in tile result"), "numeric");
        assert_eq!(failure_kind("io: injected simulator acquisition failure"), "io");
        assert_eq!(failure_kind("grid must be a power of two"), "other");
    }

    #[test]
    fn wal_line_appends_ckpt_field() {
        let r = record(0, JobStatus::Done);
        let with = r.to_json_wal(Some("job-0.pgm"));
        assert!(with.ends_with(",\"ckpt\":\"job-0.pgm\"}"), "{with}");
        let without = r.to_json_wal(None);
        assert!(without.ends_with(",\"ckpt\":null}"), "{without}");
        assert_eq!(with.matches('{').count(), with.matches('}').count());
    }
}
