//! A std-only worker pool with retries, timeouts, and panic isolation.
//!
//! N worker threads drain a shared queue of [`IltJob`]s. Each *attempt* runs
//! on a dedicated short-lived thread behind `catch_unwind`, reporting back
//! over an `mpsc` channel; the worker waits with `recv_timeout`. That split
//! buys two properties the workers themselves could not provide:
//!
//! - a panicking job becomes a failed attempt (possibly retried), never a
//!   torn-down worker or an aborted process;
//! - a wedged job times out at the worker while the runaway thread is
//!   abandoned to finish (or spin) in the background — the pool's throughput
//!   degrades by one concurrent slot at worst, but the batch completes.
//!
//! When the retry budget runs dry and degradation is enabled, the worker
//! makes one final attempt with the job's degraded recipe (the coarsest
//! low-resolution pass); success yields a [`JobStatus::Degraded`] record
//! whose mask is real, corrected output — just coarse.
//!
//! Results are collected into a vector indexed by submission order, so the
//! output — and the journal built from it — is byte-identical no matter how
//! many workers raced over the queue. Each finished job is optionally pushed
//! through a [`CheckpointSink`] the moment it completes, making progress
//! durable long before the pool drains.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use ilt_fft::{with_installed_scratch, ScratchPool};
use ilt_field::Field2D;

use crate::cache::SimulatorCache;
use crate::cancel::{CancelToken, Progress};
use crate::checkpoint::CheckpointSink;
use crate::fault::FaultPlan;
use crate::job::{run_attempt, run_degraded_attempt, IltJob, JobSuccess};
use crate::journal::{JobRecord, JobStatus};

/// Pool sizing and resilience policy.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (>= 1).
    pub threads: usize,
    /// Wall-clock budget per attempt; `None` waits indefinitely.
    pub timeout: Option<Duration>,
    /// Extra attempts allowed after the first one fails.
    pub max_retries: u32,
    /// Run the degraded low-res fallback after the retry budget is spent.
    pub degrade: bool,
    /// Deterministic fault injection for this run.
    pub faults: FaultPlan,
    /// Cooperative cancellation: once set, workers stop starting new
    /// attempts and drain the remaining queue as `cancelled` records.
    /// In-flight attempts finish (or time out) normally.
    pub cancel: CancelToken,
    /// Incremented once per job whose outcome is known (done, degraded, or
    /// failed — not cancelled); a caller's live "tiles done" counter.
    pub progress: Progress,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            timeout: None,
            max_retries: 1,
            degrade: true,
            faults: FaultPlan::none(),
            cancel: CancelToken::new(),
            progress: Progress::new(),
        }
    }
}

/// A finished job: its journal record plus the mask when it succeeded.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Journal record (always present, also for failed jobs).
    pub record: JobRecord,
    /// Final mask; `None` when every attempt failed.
    pub mask: Option<Field2D>,
}

struct Queued {
    job: IltJob,
    /// Index into `outputs` (submission order, not job id).
    slot: usize,
    /// 1-based attempt about to run.
    attempt: u32,
    /// Wall-time already burned by failed attempts, in ms.
    spent_ms: f64,
}

struct State {
    queue: VecDeque<Queued>,
    in_flight: usize,
    /// Slot `i` holds the output of `jobs[i]`, filled as jobs finish.
    outputs: Vec<Option<JobOutput>>,
}

struct Shared {
    state: Mutex<State>,
    wakeup: Condvar,
}

/// Runs `jobs` to completion on `config.threads` workers.
///
/// The returned vector is ordered like `jobs` regardless of scheduling; a
/// job exhausted of retries yields a [`JobStatus::Degraded`] record (when
/// the fallback pass succeeds) or a [`JobStatus::Failed`] record with no
/// mask rather than an `Err`, so one bad tile cannot sink a batch.
///
/// # Panics
///
/// Panics if `config.threads == 0` or if worker threads cannot be spawned.
pub fn run_jobs(jobs: Vec<IltJob>, config: &PoolConfig, cache: &SimulatorCache) -> Vec<JobOutput> {
    run_jobs_checkpointed(jobs, config, cache, None)
}

/// [`run_jobs`] with an optional checkpoint sink: every finished job is
/// persisted (mask + WAL line) the moment its outcome is known, so a crash
/// mid-run loses at most the jobs still in flight.
///
/// # Panics
///
/// Panics if `config.threads == 0` or if worker threads cannot be spawned.
pub fn run_jobs_checkpointed(
    jobs: Vec<IltJob>,
    config: &PoolConfig,
    cache: &SimulatorCache,
    sink: Option<&CheckpointSink>,
) -> Vec<JobOutput> {
    assert!(config.threads >= 1, "pool needs at least one worker");
    let n = jobs.len();
    let shared = Shared {
        state: Mutex::new(State {
            queue: jobs
                .into_iter()
                .enumerate()
                .map(|(slot, job)| Queued { job, slot, attempt: 1, spent_ms: 0.0 })
                .collect(),
            in_flight: 0,
            outputs: (0..n).map(|_| None).collect(),
        }),
        wakeup: Condvar::new(),
    };

    thread::scope(|scope| {
        for w in 0..config.threads {
            let shared = &shared;
            thread::Builder::new()
                .name(format!("ilt-worker-{w}"))
                .spawn_scoped(scope, move || worker_loop(shared, config, cache, sink))
                .expect("spawn worker thread");
        }
    });

    let state = shared.state.into_inner().expect("pool state lock poisoned");
    state
        .outputs
        .into_iter()
        .map(|slot| slot.expect("every job slot filled when the pool drains"))
        .collect()
}

fn worker_loop(
    shared: &Shared,
    config: &PoolConfig,
    cache: &SimulatorCache,
    sink: Option<&CheckpointSink>,
) {
    loop {
        let queued = {
            let mut state = shared.state.lock().expect("pool state lock poisoned");
            loop {
                if let Some(q) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break q;
                }
                if state.in_flight == 0 {
                    return; // queue drained and nobody can refill it
                }
                state = shared.wakeup.wait(state).expect("pool state lock poisoned");
            }
        };

        // The tile boundary: a cancellation observed here turns the popped
        // job (and, one by one, the rest of the queue) into a cancelled
        // record without starting its attempt. Retries of an in-flight job
        // land back on the queue and are swept up the same way. Cancelled
        // outputs are deliberately not checkpointed — on a resume they are
        // exactly the jobs that should run.
        if config.cancel.is_cancelled() {
            let output = cancelled(&queued);
            let mut state = shared.state.lock().expect("pool state lock poisoned");
            state.outputs[queued.slot] = Some(output);
            state.in_flight -= 1;
            shared.wakeup.notify_all();
            continue;
        }

        let started = Instant::now();
        let outcome = execute_attempt(&queued.job, queued.attempt, false, config, cache);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

        let finished_output = match outcome {
            Ok(success) => Some(finished(&queued, success, elapsed_ms)),
            Err(_) if queued.attempt <= config.max_retries => {
                let mut state = shared.state.lock().expect("pool state lock poisoned");
                state.queue.push_back(Queued {
                    job: queued.job,
                    slot: queued.slot,
                    attempt: queued.attempt + 1,
                    spent_ms: queued.spent_ms + elapsed_ms,
                });
                state.in_flight -= 1;
                shared.wakeup.notify_all();
                continue;
            }
            Err(error) => {
                // Retry budget spent: one last stand with the degraded
                // recipe, numbered as the next attempt so fault plans can
                // target (and kill) the fallback too.
                let fallback = if config.degrade {
                    let t = Instant::now();
                    let out =
                        execute_attempt(&queued.job, queued.attempt + 1, true, config, cache);
                    (out, t.elapsed().as_secs_f64() * 1e3)
                } else {
                    (Err(String::new()), 0.0)
                };
                match fallback {
                    (Ok(success), degraded_ms) => {
                        Some(degraded(&queued, success, error, elapsed_ms + degraded_ms))
                    }
                    (Err(_), degraded_ms) => {
                        Some(failed(&queued, error, elapsed_ms + degraded_ms))
                    }
                }
            }
        };

        let output = finished_output.expect("non-retry outcomes always produce an output");
        // Durability first, outside the pool lock: the WAL append and mask
        // write are I/O and must not serialize the other workers.
        if let Some(sink) = sink {
            sink.persist(&output);
        }
        config.progress.tick();
        let mut state = shared.state.lock().expect("pool state lock poisoned");
        state.outputs[queued.slot] = Some(output);
        state.in_flight -= 1;
        // Wake peers: a retry was enqueued, or the pool may now be drained.
        shared.wakeup.notify_all();
    }
}

/// Process-wide recycling of FFT workspaces across attempt threads.
///
/// Every attempt runs on a fresh short-lived thread, whose thread-local FFT
/// arena would start cold: grown buffers gone, memoized twist tables gone.
/// Checking a workspace out of this pool and installing it for the attempt's
/// duration makes the warm state survive thread turnover — a workspace that
/// simulated a given tile shape once carries its tables to every later
/// attempt of that shape. A timed-out attempt's abandoned thread simply
/// never returns its workspace; the pool grows a new one on the next
/// checkout.
fn scratch_pool() -> &'static ScratchPool {
    static POOL: OnceLock<ScratchPool> = OnceLock::new();
    POOL.get_or_init(ScratchPool::new)
}

/// Runs one attempt on its own thread so panics and overruns stay contained.
fn execute_attempt(
    job: &IltJob,
    attempt: u32,
    degraded: bool,
    config: &PoolConfig,
    cache: &SimulatorCache,
) -> Result<JobSuccess, String> {
    let (tx, rx) = mpsc::channel();
    let job = job.clone();
    let cache = cache.clone();
    let faults = config.faults.clone();
    let id = job.id;
    thread::Builder::new()
        .name(format!("ilt-job-{id}-a{attempt}"))
        .spawn(move || {
            let pool = scratch_pool();
            let mut workspace = pool.checkout();
            let result = catch_unwind(AssertUnwindSafe(|| {
                with_installed_scratch(&mut workspace, || {
                    if degraded {
                        run_degraded_attempt(&job, attempt, &cache, &faults)
                            .unwrap_or_else(|| Err("no degraded recipe for this job".into()))
                    } else {
                        run_attempt(&job, attempt, &cache, &faults)
                    }
                })
            }));
            // Recycle the workspace even after a panic: the installed-scratch
            // guard has already swapped the (grown) arena state back into it.
            pool.restore(workspace);
            let flattened = match result {
                Ok(run) => run,
                Err(payload) => Err(format!("panic: {}", panic_message(payload.as_ref()))),
            };
            // The receiver is gone on timeout; nothing to do about it.
            let _ = tx.send(flattened);
        })
        .expect("spawn job attempt thread");

    match config.timeout {
        Some(budget) => rx.recv_timeout(budget).unwrap_or_else(|err| match err {
            mpsc::RecvTimeoutError::Timeout => Err(format!(
                "timed out after {:.1}s (attempt thread abandoned)",
                budget.as_secs_f64()
            )),
            mpsc::RecvTimeoutError::Disconnected => {
                Err("attempt thread died without reporting".into())
            }
        }),
        None => rx
            .recv()
            .unwrap_or_else(|_| Err("attempt thread died without reporting".into())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn base_record(queued: &Queued, status: JobStatus, wall_ms: f64) -> JobRecord {
    JobRecord {
        job_id: queued.job.id,
        case: queued.job.case.clone(),
        tile: queued.job.tile.as_ref().map(|t| (t.grid_row, t.grid_col)),
        grid: queued.job.target.shape().0,
        attempts: queued.attempt,
        status,
        metrics: None,
        times: Default::default(),
        wall_ms: queued.spent_ms + wall_ms,
    }
}

fn finished(queued: &Queued, success: JobSuccess, elapsed_ms: f64) -> JobOutput {
    let mut record = base_record(queued, JobStatus::Done, elapsed_ms);
    record.metrics = Some(success.metrics);
    record.times = success.times;
    JobOutput { record, mask: Some(success.mask) }
}

fn degraded(queued: &Queued, success: JobSuccess, why: String, elapsed_ms: f64) -> JobOutput {
    let mut record = base_record(queued, JobStatus::Degraded(why), elapsed_ms);
    record.metrics = Some(success.metrics);
    record.times = success.times;
    JobOutput { record, mask: Some(success.mask) }
}

fn failed(queued: &Queued, error: String, elapsed_ms: f64) -> JobOutput {
    JobOutput { record: base_record(queued, JobStatus::Failed(error), elapsed_ms), mask: None }
}

fn cancelled(queued: &Queued) -> JobOutput {
    let mut record = base_record(queued, JobStatus::Cancelled, 0.0);
    // No attempt ran for this pop; report only the attempts already spent.
    record.attempts = queued.attempt.saturating_sub(1);
    JobOutput { record, mask: None }
}

/// Scheduling priority of a queued work item.
///
/// Three classes are enough to express the production shapes: interactive
/// (`High`), default batch (`Normal`), and best-effort backfill (`Low`).
/// The weights (4/2/1) drive the smooth weighted round-robin inside
/// [`ClassQueues`]: with every class backlogged, high gets 4 of every 7
/// dequeues and low still gets 1 — proportional service, never starvation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Interactive / latency-sensitive; 4/7 of contended dequeues.
    High,
    /// The default class; 2/7 of contended dequeues.
    Normal,
    /// Best-effort backfill; 1/7 of contended dequeues, never zero.
    Low,
}

impl PriorityClass {
    /// Every class, in scheduling-preference order (the tiebreak order).
    pub const ALL: [PriorityClass; 3] =
        [PriorityClass::High, PriorityClass::Normal, PriorityClass::Low];

    /// Parses the wire spelling (`high` / `normal` / `low`).
    pub fn parse(s: &str) -> Option<PriorityClass> {
        match s {
            "high" => Some(PriorityClass::High),
            "normal" => Some(PriorityClass::Normal),
            "low" => Some(PriorityClass::Low),
            _ => None,
        }
    }

    /// The wire spelling (also the metric label value).
    pub fn as_str(self) -> &'static str {
        match self {
            PriorityClass::High => "high",
            PriorityClass::Normal => "normal",
            PriorityClass::Low => "low",
        }
    }

    /// SWRR weight: relative share of dequeues under full contention.
    pub fn weight(self) -> i64 {
        match self {
            PriorityClass::High => 4,
            PriorityClass::Normal => 2,
            PriorityClass::Low => 1,
        }
    }

    /// Dense index into per-class arrays (`ALL[idx] == self`).
    pub fn index(self) -> usize {
        match self {
            PriorityClass::High => 0,
            PriorityClass::Normal => 1,
            PriorityClass::Low => 2,
        }
    }
}

/// Per-class FIFOs with a smooth-weighted-round-robin dequeue — the
/// priority-aware feed for a worker pool.
///
/// [`ClassQueues::pop`] implements nginx-style smooth WRR restricted to the
/// classes that currently have work (that restriction *is* the work
/// stealing: an idle class donates its whole share instead of leaving the
/// slot empty). The schedule is deterministic, which is what lets the
/// fairness tests pin exact service orders:
///
/// - all classes backlogged → high/normal/low are served 4/2/1 per 7 pops;
/// - only one class backlogged → it gets every pop (no reserved idle slots);
/// - a high item arriving during a low-priority flood is dequeued on the
///   very next pop (credit 4 vs. 1).
///
/// A class's credit resets when it empties, so an idle class cannot bank
/// credit and burst past the weights when work returns.
#[derive(Debug)]
pub struct ClassQueues<T> {
    queues: [VecDeque<T>; 3],
    credit: [i64; 3],
}

impl<T> Default for ClassQueues<T> {
    fn default() -> Self {
        ClassQueues { queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()], credit: [0; 3] }
    }
}

impl<T> ClassQueues<T> {
    /// An empty set of class queues.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `item` to the back of its class FIFO.
    pub fn push(&mut self, class: PriorityClass, item: T) {
        self.queues[class.index()].push_back(item);
    }

    /// Dequeues the next item by smooth weighted round-robin over the
    /// non-empty classes; `None` when every queue is empty.
    pub fn pop(&mut self) -> Option<(PriorityClass, T)> {
        let mut total = 0i64;
        let mut winner: Option<usize> = None;
        for class in PriorityClass::ALL {
            let i = class.index();
            if self.queues[i].is_empty() {
                // Emptying a class forfeits its banked credit; weights only
                // meter classes that are actually competing.
                self.credit[i] = 0;
                continue;
            }
            total += class.weight();
            self.credit[i] += class.weight();
            // Strict `>` keeps ties on the earlier (higher-priority) class.
            if winner.is_none_or(|w| self.credit[i] > self.credit[w]) {
                winner = Some(i);
            }
        }
        let winner = winner?;
        self.credit[winner] -= total;
        let item = self.queues[winner].pop_front().expect("winner class is non-empty");
        Some((PriorityClass::ALL[winner], item))
    }

    /// Items across all classes.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when every class FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Queue depth per class, indexed like [`PriorityClass::ALL`].
    pub fn len_by_class(&self) -> [usize; 3] {
        [self.queues[0].len(), self.queues[1].len(), self.queues[2].len()]
    }

    /// Keeps only the items for which `keep` returns true (FIFO order
    /// preserved within each class).
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        for q in &mut self.queues {
            q.retain(&mut keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec};
    use ilt_core::{IltConfig, Stage};
    use ilt_optics::OpticsConfig;

    fn job(id: usize) -> IltJob {
        let n = 64;
        let target = Field2D::from_fn(n, n, |r, c| {
            if (20 + id % 3..44).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
        });
        IltJob {
            id,
            case: format!("case{}", id / 2),
            tile: None,
            target,
            optics: OpticsConfig {
                grid: n,
                nm_per_px: 8.0,
                num_kernels: 3,
                ..OpticsConfig::default()
            },
            ilt: IltConfig::default(),
            schedule: vec![Stage::low_res(2, 3)],
        }
    }

    /// A job whose schedule has a cheaper coarse stage to fall back to.
    fn two_stage_job(id: usize) -> IltJob {
        let mut j = job(id);
        j.schedule = vec![Stage::low_res(2, 3), Stage::high_res(1, 2)];
        j
    }

    #[test]
    fn pool_preserves_submission_order() {
        let cache = SimulatorCache::new();
        let jobs: Vec<_> = (0..5).map(job).collect();
        let config = PoolConfig { threads: 3, ..PoolConfig::default() };
        let outputs = run_jobs(jobs, &config, &cache);
        assert_eq!(outputs.len(), 5);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.record.job_id, i);
            assert!(matches!(out.record.status, JobStatus::Done));
            assert!(out.mask.is_some());
        }
        // All five jobs share one optics configuration.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn injected_panic_is_retried_and_succeeds() {
        let cache = SimulatorCache::new();
        let outputs = run_jobs(
            vec![job(0)],
            &PoolConfig {
                threads: 1,
                max_retries: 1,
                faults: FaultPlan::none().with(FaultSpec::through(0, 1, FaultKind::Panic)),
                ..PoolConfig::default()
            },
            &cache,
        );
        assert!(matches!(outputs[0].record.status, JobStatus::Done));
        assert_eq!(outputs[0].record.attempts, 2);
        assert!(outputs[0].mask.is_some());
    }

    #[test]
    fn retries_are_bounded_and_failure_is_isolated() {
        let cache = SimulatorCache::new();
        // Job 0 always panics (fallback included); job 1 is healthy — the
        // batch still completes.
        let outputs = run_jobs(
            vec![job(0), job(1)],
            &PoolConfig {
                threads: 2,
                max_retries: 2,
                faults: FaultPlan::none().with(FaultSpec::always(0, FaultKind::Panic)),
                ..PoolConfig::default()
            },
            &cache,
        );
        match &outputs[0].record.status {
            JobStatus::Failed(msg) => assert!(msg.contains("injected failure"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(outputs[0].record.attempts, 3, "1 initial + 2 retries");
        assert!(outputs[0].mask.is_none());
        assert!(matches!(outputs[1].record.status, JobStatus::Done));
    }

    #[test]
    fn exhausted_retries_fall_back_to_degraded_low_res() {
        let cache = SimulatorCache::new();
        // Panic on attempts 1..=2 (initial + the one retry); the degraded
        // attempt is attempt 3 and is clean.
        let outputs = run_jobs(
            vec![two_stage_job(0)],
            &PoolConfig {
                threads: 1,
                max_retries: 1,
                faults: FaultPlan::none().with(FaultSpec::through(0, 2, FaultKind::Panic)),
                ..PoolConfig::default()
            },
            &cache,
        );
        match &outputs[0].record.status {
            JobStatus::Degraded(why) => assert!(why.contains("injected failure"), "{why}"),
            other => panic!("expected degraded, got {other:?}"),
        }
        let metrics = outputs[0].record.metrics.expect("degraded results carry metrics");
        assert_eq!(metrics.iterations, 3, "only the coarse stage ran");
        assert!(outputs[0].mask.is_some(), "degraded results carry a usable mask");
        // With degradation off the same run fails outright.
        let outputs = run_jobs(
            vec![two_stage_job(0)],
            &PoolConfig {
                threads: 1,
                max_retries: 1,
                degrade: false,
                faults: FaultPlan::none().with(FaultSpec::through(0, 2, FaultKind::Panic)),
                ..PoolConfig::default()
            },
            &cache,
        );
        assert!(matches!(outputs[0].record.status, JobStatus::Failed(_)));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let digest_with = |threads: usize| {
            let cache = SimulatorCache::new();
            let jobs: Vec<_> = (0..4).map(job).collect();
            let outputs = run_jobs(
                jobs,
                &PoolConfig { threads, ..PoolConfig::default() },
                &cache,
            );
            outputs
                .iter()
                .map(|o| o.record.digest())
                .collect::<Vec<_>>()
        };
        assert_eq!(digest_with(1), digest_with(2));
    }

    #[test]
    fn timeout_marks_job_failed() {
        let cache = SimulatorCache::new();
        let mut j = job(0);
        // Plenty of iterations at full resolution: will not finish in 1 ms.
        j.schedule = vec![Stage::high_res(1, 500)];
        let outputs = run_jobs(
            vec![j],
            &PoolConfig {
                threads: 1,
                timeout: Some(Duration::from_millis(1)),
                max_retries: 0,
                degrade: false,
                faults: FaultPlan::none(),
                ..PoolConfig::default()
            },
            &cache,
        );
        match &outputs[0].record.status {
            JobStatus::Failed(msg) => assert!(msg.contains("timed out"), "{msg}"),
            other => panic!("expected timeout failure, got {other:?}"),
        }
    }

    #[test]
    fn injected_delay_trips_the_timeout_then_recovers() {
        let cache = SimulatorCache::new();
        let j = job(0);
        // Prewarm so the clean retry only pays for optimization, keeping
        // the timeout budget honest in slow debug builds.
        cache.get_or_build(&j.optics).unwrap();
        let outputs = run_jobs(
            vec![j],
            &PoolConfig {
                threads: 1,
                timeout: Some(Duration::from_secs(5)),
                max_retries: 1,
                degrade: true,
                faults: FaultPlan::none()
                    .with(FaultSpec::at(0, 1, FaultKind::Delay { ms: 60_000 })),
                ..PoolConfig::default()
            },
            &cache,
        );
        assert!(
            matches!(outputs[0].record.status, JobStatus::Done),
            "retry is clean, got {:?}",
            outputs[0].record.status
        );
        assert_eq!(outputs[0].record.attempts, 2);
        assert!(outputs[0].record.wall_ms >= 5_000.0, "attempt 1 burned the full timeout");
    }

    #[test]
    fn pre_cancelled_pool_drains_without_running_anything() {
        let cache = SimulatorCache::new();
        let config = PoolConfig { threads: 2, ..PoolConfig::default() };
        config.cancel.cancel();
        let outputs = run_jobs((0..4).map(job).collect(), &config, &cache);
        assert_eq!(outputs.len(), 4);
        for out in &outputs {
            assert!(matches!(out.record.status, JobStatus::Cancelled), "{:?}", out.record);
            assert!(out.mask.is_none());
        }
        assert_eq!(cache.len(), 0, "no attempt ever touched the simulator");
        assert_eq!(config.progress.done(), 0, "cancelled jobs are not progress");
    }

    #[test]
    fn mid_run_cancellation_finishes_the_in_flight_job_only() {
        let cache = SimulatorCache::new();
        // Job 0 sleeps 400 ms before running; the cancel lands during that
        // window, so job 0 (already in flight) completes while jobs 1..3
        // are swept off the queue as cancelled.
        let config = PoolConfig {
            threads: 1,
            faults: FaultPlan::none().with(FaultSpec::at(0, 1, FaultKind::Delay { ms: 400 })),
            ..PoolConfig::default()
        };
        let token = config.cancel.clone();
        let canceller = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let outputs = run_jobs((0..4).map(job).collect(), &config, &cache);
        canceller.join().unwrap();
        assert!(matches!(outputs[0].record.status, JobStatus::Done), "{:?}", outputs[0].record);
        for out in &outputs[1..] {
            assert!(matches!(out.record.status, JobStatus::Cancelled), "{:?}", out.record);
        }
        assert_eq!(config.progress.done(), 1, "only the in-flight job counts");
    }

    #[test]
    fn progress_counts_every_executed_job() {
        let cache = SimulatorCache::new();
        let config = PoolConfig { threads: 2, ..PoolConfig::default() };
        let progress = config.progress.clone();
        assert_eq!(progress.done(), 0);
        let outputs = run_jobs((0..5).map(job).collect(), &config, &cache);
        assert_eq!(outputs.len(), 5);
        assert_eq!(progress.done(), 5, "failed and done jobs both tick progress");
    }

    #[test]
    fn nan_poison_retries_then_degrades_when_persistent() {
        let cache = SimulatorCache::new();
        // Poisoned on attempts 1..=2, clean on the degraded attempt 3.
        let outputs = run_jobs(
            vec![two_stage_job(0)],
            &PoolConfig {
                threads: 1,
                max_retries: 1,
                faults: FaultPlan::none()
                    .with(FaultSpec::through(0, 2, FaultKind::PoisonNan)),
                ..PoolConfig::default()
            },
            &cache,
        );
        match &outputs[0].record.status {
            JobStatus::Degraded(why) => assert!(why.starts_with("numeric:"), "{why}"),
            other => panic!("expected degraded-after-numeric, got {other:?}"),
        }
    }

    #[test]
    fn class_queues_serve_weights_under_full_contention() {
        let mut q = ClassQueues::new();
        for i in 0..28 {
            q.push(PriorityClass::High, ("h", i));
            q.push(PriorityClass::Normal, ("n", i));
            q.push(PriorityClass::Low, ("l", i));
        }
        // Over any aligned window of 7 pops with all classes backlogged,
        // the 4/2/1 weights are served exactly.
        for window in 0..4 {
            let mut counts = [0usize; 3];
            for _ in 0..7 {
                let (class, _) = q.pop().expect("backlogged");
                counts[class.index()] += 1;
            }
            assert_eq!(counts, [4, 2, 1], "window {window}");
        }
        // FIFO within a class.
        let mut seen_high = Vec::new();
        while let Some((class, (tag, i))) = q.pop() {
            if class == PriorityClass::High {
                assert_eq!(tag, "h");
                seen_high.push(i);
            }
        }
        assert_eq!(seen_high, (16..28).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn lone_class_gets_every_pop_and_high_preempts_a_flood() {
        let mut q = ClassQueues::new();
        for i in 0..50 {
            q.push(PriorityClass::Low, i);
        }
        // Work stealing: no slots are reserved for idle classes.
        for i in 0..20 {
            assert_eq!(q.pop(), Some((PriorityClass::Low, i)));
        }
        // A high arrival during the flood wins the very next pop (credit 4
        // vs. 1), bounding its queueing delay to the in-flight item.
        q.push(PriorityClass::High, 999);
        assert_eq!(q.pop(), Some((PriorityClass::High, 999)));
        assert_eq!(q.pop(), Some((PriorityClass::Low, 20)));
        assert_eq!(q.len(), 29);
        assert_eq!(q.len_by_class(), [0, 0, 29]);
    }

    #[test]
    fn class_queues_retain_and_credit_reset() {
        let mut q = ClassQueues::new();
        for i in 0..4 {
            q.push(PriorityClass::Normal, i);
            q.push(PriorityClass::Low, 10 + i);
        }
        q.retain(|&v| v % 2 == 0);
        assert_eq!(q.len_by_class(), [0, 2, 2]);
        // Drain low only, then refill normal: low's banked credit was reset
        // when it emptied, so normal is not starved by a returning low.
        q.retain(|&v| v < 10);
        assert_eq!(q.len_by_class(), [0, 2, 0]);
        assert_eq!(q.pop(), Some((PriorityClass::Normal, 0)));
        q.push(PriorityClass::Low, 12);
        let (class, _) = q.pop().expect("two classes live");
        assert_eq!(class, PriorityClass::Normal, "normal outweighs a returning low");
    }
}
