//! Deterministic fault injection for chaos-testing the runtime.
//!
//! A [`FaultPlan`] is a declarative, fully deterministic description of the
//! failures a run should suffer: which job, which attempt, what kind. It
//! replaces the old `inject_panics` counter with a model rich enough to
//! exercise every recovery path the engine claims to have — panic isolation,
//! attempt timeouts, checkpoint-write durability gaps, the NaN guard in the
//! optimize loop, simulator-cache build failures, and a hard process crash
//! immediately after a checkpoint becomes durable (the "kill -9 mid-run"
//! used by `verify_resume.sh`).
//!
//! Determinism is the point: a fault either fires at `(job_id, attempt)` or
//! it does not, for every execution, regardless of thread count. The seeded
//! [`FaultPlan::scattered`] constructor draws its *choice* of victims from
//! the in-tree xorshift generator, so even randomized chaos runs replay
//! exactly from their seed.

use std::fmt;
use std::time::Duration;

use ilt_layouts::Xorshift64Star;

/// What a single injected fault does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the start of the attempt (exercises `catch_unwind` + retry).
    Panic,
    /// Sleep this many milliseconds at the start of the attempt (push it
    /// past the pool's per-attempt timeout).
    Delay {
        /// Milliseconds to stall before doing any work.
        ms: u64,
    },
    /// Fail simulator acquisition with an I/O-style error (retryable; the
    /// cache path for a build that dies underneath a job).
    BuildError,
    /// Poison the finished mask with a NaN so the numeric guard must catch
    /// it and fail the attempt with a `"numeric"` reason.
    PoisonNan,
    /// Fail the checkpoint write of this job's result: the job succeeds in
    /// memory but is *not* durable, so a resume must re-run it.
    CheckpointError,
    /// Transport fault: the worker accepts the shard request, then writes
    /// nothing and drops the connection (a refused/reset dispatch).
    ConnRefuse,
    /// Transport fault: the worker stalls this many milliseconds mid-way
    /// through writing the response body (a half-open, dribbling stream).
    ReadStall {
        /// Milliseconds to stall between the first and second half of the
        /// response body.
        ms: u64,
    },
    /// Transport fault: the worker declares the full content-length but
    /// truncates the body part-way (a torn JSONL stream).
    TornResponse,
    /// Transport fault: the worker flips bytes in the middle of the
    /// response body (corruption the hash checks must catch).
    Garble,
}

impl FaultKind {
    fn token(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay { .. } => "delay",
            FaultKind::BuildError => "build",
            FaultKind::PoisonNan => "nan",
            FaultKind::CheckpointError => "ckpt",
            FaultKind::ConnRefuse => "conn_refuse",
            FaultKind::ReadStall { .. } => "read_stall",
            FaultKind::TornResponse => "torn_response",
            FaultKind::Garble => "garble",
        }
    }

    /// True for the transport-level kinds, which fire on the worker's wire
    /// (not in the compute pool): `conn_refuse`, `read_stall`,
    /// `torn_response`, `garble`.
    pub fn is_transport(self) -> bool {
        matches!(
            self,
            FaultKind::ConnRefuse
                | FaultKind::ReadStall { .. }
                | FaultKind::TornResponse
                | FaultKind::Garble
        )
    }
}

/// One injected fault, addressed to a job and a range of attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The target job id.
    pub job_id: usize,
    /// First 1-based attempt the fault fires on.
    pub first_attempt: u32,
    /// Last 1-based attempt the fault fires on (inclusive).
    pub last_attempt: u32,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// A fault firing on exactly one attempt of one job.
    pub fn at(job_id: usize, attempt: u32, kind: FaultKind) -> Self {
        Self { job_id, first_attempt: attempt, last_attempt: attempt, kind }
    }

    /// A fault firing on every attempt of one job (attempt 1 through
    /// `u32::MAX`): the job can never succeed normally.
    pub fn always(job_id: usize, kind: FaultKind) -> Self {
        Self { job_id, first_attempt: 1, last_attempt: u32::MAX, kind }
    }

    /// A fault firing on attempts 1 through `n` (the old `inject_panics`
    /// semantics when `kind` is [`FaultKind::Panic`]).
    pub fn through(job_id: usize, n: u32, kind: FaultKind) -> Self {
        Self { job_id, first_attempt: 1, last_attempt: n, kind }
    }

    fn matches(&self, job_id: usize, attempt: u32) -> bool {
        self.job_id == job_id && (self.first_attempt..=self.last_attempt).contains(&attempt)
    }
}

/// A deterministic plan of injected faults for one run.
///
/// Empty by default (no faults). Query methods are keyed by
/// `(job_id, attempt)` where `attempt` is the pool's 1-based attempt
/// counter; the degraded fallback attempt uses the next attempt number
/// after the last retry, so plans can target it too.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    /// Abort the process right after this job's checkpoint becomes durable.
    crash_after_checkpoint: Option<usize>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty() && self.crash_after_checkpoint.is_none()
    }

    /// Adds one fault spec (builder style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Arms a process abort that fires immediately after job
    /// `job_id`'s checkpoint is durable (WAL line fsynced). Used to
    /// simulate a mid-run kill at a deterministic point.
    #[must_use]
    pub fn with_crash_after_checkpoint(mut self, job_id: usize) -> Self {
        self.crash_after_checkpoint = Some(job_id);
        self
    }

    /// Seeded random scatter: each of `n_jobs` jobs independently suffers
    /// one first-attempt fault with probability `rate`, the kind cycling
    /// deterministically through `kinds`. Same seed, same plan.
    pub fn scattered(seed: u64, n_jobs: usize, rate: f64, kinds: &[FaultKind]) -> Self {
        let mut rng = Xorshift64Star::new(seed.max(1));
        let mut plan = Self::default();
        if kinds.is_empty() || !(rate > 0.0) {
            return plan;
        }
        let mut pick = 0usize;
        for job_id in 0..n_jobs {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if u < rate {
                plan.specs.push(FaultSpec::at(job_id, 1, kinds[pick % kinds.len()]));
                pick += 1;
            }
        }
        plan
    }

    /// The largest job id any spec targets (for validation against the
    /// planned job count).
    pub fn max_job_id(&self) -> Option<usize> {
        self.specs
            .iter()
            .map(|s| s.job_id)
            .chain(self.crash_after_checkpoint)
            .max()
    }

    /// True when the attempt should panic.
    pub fn should_panic(&self, job_id: usize, attempt: u32) -> bool {
        self.fires(job_id, attempt, |k| matches!(k, FaultKind::Panic))
    }

    /// The artificial stall for this attempt, if any.
    pub fn delay(&self, job_id: usize, attempt: u32) -> Option<Duration> {
        self.specs
            .iter()
            .find_map(|s| match (s.matches(job_id, attempt), s.kind) {
                (true, FaultKind::Delay { ms }) => Some(Duration::from_millis(ms)),
                _ => None,
            })
    }

    /// True when simulator acquisition should fail for this attempt.
    pub fn build_error(&self, job_id: usize, attempt: u32) -> bool {
        self.fires(job_id, attempt, |k| matches!(k, FaultKind::BuildError))
    }

    /// True when the attempt's result mask should be poisoned with NaN.
    pub fn poison_nan(&self, job_id: usize, attempt: u32) -> bool {
        self.fires(job_id, attempt, |k| matches!(k, FaultKind::PoisonNan))
    }

    /// True when this job's checkpoint write should fail. Checkpoints are
    /// written once per job (after its successful attempt), so this matches
    /// any attempt range covering the job at all.
    pub fn checkpoint_error(&self, job_id: usize) -> bool {
        self.specs
            .iter()
            .any(|s| s.job_id == job_id && matches!(s.kind, FaultKind::CheckpointError))
    }

    /// True when the process must abort right after this job's checkpoint
    /// is durable.
    pub fn crash_after_checkpoint(&self, job_id: usize) -> bool {
        self.crash_after_checkpoint == Some(job_id)
    }

    /// The transport fault (if any) armed for this `(job_id, attempt)`.
    ///
    /// Here `attempt` is the *dispatch* counter a worker keeps per shard id
    /// — the nth time this worker has been asked to serve a shard carrying
    /// `job_id` — not the compute pool's per-job attempt counter. The first
    /// matching transport spec wins.
    pub fn transport_fault(&self, job_id: usize, attempt: u32) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|s| s.kind.is_transport() && s.matches(job_id, attempt))
            .map(|s| s.kind)
    }

    /// True when any spec in the plan is a transport kind.
    pub fn has_transport_faults(&self) -> bool {
        self.specs.iter().any(|s| s.kind.is_transport())
    }

    fn fires(&self, job_id: usize, attempt: u32, pred: impl Fn(FaultKind) -> bool) -> bool {
        self.specs.iter().any(|s| s.matches(job_id, attempt) && pred(s.kind))
    }

    /// Parses a comma-separated fault-spec list, the `--inject` CLI syntax:
    ///
    /// - `panic@J` — panic on every attempt of job `J`
    /// - `panic@J:A` — panic on attempt `A` only; `panic@J:A-B` for a range
    /// - `delay@J:A=MS` — stall attempt `A` by `MS` milliseconds
    /// - `build@J:A` — fail simulator acquisition on attempt `A`
    /// - `nan@J:A` — poison the result of attempt `A` with NaN
    /// - `ckpt@J` — fail job `J`'s checkpoint write
    /// - `crash@J` — abort the process after job `J`'s checkpoint is durable
    /// - `conn_refuse@J[:A]` — worker drops the shard connection unanswered
    /// - `read_stall@J[:A]=MS` — worker stalls `MS` ms mid-response-body
    /// - `torn_response@J[:A]` — worker truncates the response body
    /// - `garble@J[:A]` — worker flips bytes in the response body
    ///
    /// For the four transport kinds, `A` addresses the worker's per-shard
    /// *dispatch* counter rather than the pool's attempt counter.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind_tok, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault spec `{entry}`: expected kind@job[:attempt]"))?;
            let (addr, arg) = match rest.split_once('=') {
                Some((a, v)) => (a, Some(v)),
                None => (rest, None),
            };
            let (job_tok, attempts_tok) = match addr.split_once(':') {
                Some((j, a)) => (j, Some(a)),
                None => (addr, None),
            };
            let job_id: usize = job_tok
                .parse()
                .map_err(|_| format!("fault spec `{entry}`: bad job id `{job_tok}`"))?;
            let (first, last) = match attempts_tok {
                None => (1, u32::MAX),
                Some(a) => match a.split_once('-') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .map_err(|_| format!("fault spec `{entry}`: bad attempt `{lo}`"))?,
                        hi.parse()
                            .map_err(|_| format!("fault spec `{entry}`: bad attempt `{hi}`"))?,
                    ),
                    None => {
                        let n: u32 = a
                            .parse()
                            .map_err(|_| format!("fault spec `{entry}`: bad attempt `{a}`"))?;
                        (n, n)
                    }
                },
            };
            if first == 0 || first > last {
                return Err(format!("fault spec `{entry}`: attempts are 1-based, first <= last"));
            }
            let kind = match (kind_tok, arg) {
                ("panic", None) => FaultKind::Panic,
                ("delay", Some(ms)) => FaultKind::Delay {
                    ms: ms
                        .parse()
                        .map_err(|_| format!("fault spec `{entry}`: bad delay `{ms}`"))?,
                },
                ("delay", None) => {
                    return Err(format!("fault spec `{entry}`: delay needs `=MS`"));
                }
                ("build", None) => FaultKind::BuildError,
                ("nan", None) => FaultKind::PoisonNan,
                ("ckpt", None) => FaultKind::CheckpointError,
                ("conn_refuse", None) => FaultKind::ConnRefuse,
                ("read_stall", Some(ms)) => FaultKind::ReadStall {
                    ms: ms
                        .parse()
                        .map_err(|_| format!("fault spec `{entry}`: bad stall `{ms}`"))?,
                },
                ("read_stall", None) => {
                    return Err(format!("fault spec `{entry}`: read_stall needs `=MS`"));
                }
                ("torn_response", None) => FaultKind::TornResponse,
                ("garble", None) => FaultKind::Garble,
                ("crash", None) => {
                    // A crash fires once, when the job's checkpoint lands;
                    // silently dropping an attempt range here would make
                    // parse → Display → parse lossy, so reject it instead.
                    if attempts_tok.is_some() {
                        return Err(format!(
                            "fault spec `{entry}`: crash takes no attempt range"
                        ));
                    }
                    plan.crash_after_checkpoint = Some(job_id);
                    continue;
                }
                _ => {
                    return Err(format!(
                        "fault spec `{entry}`: unknown kind `{kind_tok}` (panic, delay, build, nan, ckpt, crash, conn_refuse, read_stall, torn_response, garble)"
                    ));
                }
            };
            plan.specs.push(FaultSpec { job_id, first_attempt: first, last_attempt: last, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.specs {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            write!(f, "{}@{}", s.kind.token(), s.job_id)?;
            if (s.first_attempt, s.last_attempt) != (1, u32::MAX) {
                if s.first_attempt == s.last_attempt {
                    write!(f, ":{}", s.first_attempt)?;
                } else {
                    write!(f, ":{}-{}", s.first_attempt, s.last_attempt)?;
                }
            }
            if let FaultKind::Delay { ms } | FaultKind::ReadStall { ms } = s.kind {
                write!(f, "={ms}")?;
            }
        }
        if let Some(j) = self.crash_after_checkpoint {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "crash@{j}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.should_panic(0, 1));
        assert!(p.delay(0, 1).is_none());
        assert!(!p.checkpoint_error(0));
        assert!(!p.crash_after_checkpoint(0));
        assert_eq!(p.max_job_id(), None);
    }

    #[test]
    fn attempt_ranges_address_precisely() {
        let p = FaultPlan::none()
            .with(FaultSpec::at(3, 2, FaultKind::Panic))
            .with(FaultSpec::through(5, 2, FaultKind::PoisonNan));
        assert!(!p.should_panic(3, 1));
        assert!(p.should_panic(3, 2));
        assert!(!p.should_panic(3, 3));
        assert!(!p.should_panic(4, 2));
        assert!(p.poison_nan(5, 1));
        assert!(p.poison_nan(5, 2));
        assert!(!p.poison_nan(5, 3));
        assert_eq!(p.max_job_id(), Some(5));
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let p = FaultPlan::parse("panic@0, delay@1:2=250, build@2:1, nan@3:1-3, ckpt@4, crash@5")
            .unwrap();
        assert!(p.should_panic(0, 1) && p.should_panic(0, 99));
        assert_eq!(p.delay(1, 2), Some(Duration::from_millis(250)));
        assert!(p.delay(1, 1).is_none());
        assert!(p.build_error(2, 1) && !p.build_error(2, 2));
        assert!(p.poison_nan(3, 3) && !p.poison_nan(3, 4));
        assert!(p.checkpoint_error(4));
        assert!(p.crash_after_checkpoint(5) && !p.crash_after_checkpoint(4));
        assert_eq!(p.max_job_id(), Some(5));
        let display = p.to_string();
        let reparsed = FaultPlan::parse(&display).unwrap();
        assert_eq!(p, reparsed, "Display must round-trip: {display}");
    }

    #[test]
    fn every_kind_round_trips_parse_display_parse() {
        // The grammar must be a fixed point: parse → Display reproduces the
        // input exactly, and Display → parse reproduces the plan exactly,
        // for every kind and every attempt-address form.
        for spec in [
            "panic@0",
            "panic@0:2",
            "panic@0:2-3",
            "delay@1=250",
            "delay@1:2=250",
            "delay@1:2-4=250",
            "build@2",
            "build@2:1",
            "nan@3",
            "nan@3:1-3",
            "ckpt@4",
            "ckpt@4:2",
            "crash@5",
            "conn_refuse@6",
            "conn_refuse@6:1",
            "read_stall@7=400",
            "read_stall@7:1-2=400",
            "torn_response@8:1",
            "garble@9",
            "panic@0:2,delay@1:2=250,crash@5",
            "conn_refuse@0:1,read_stall@1:1=50,torn_response@2:1,garble@3:1",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            let display = plan.to_string();
            assert_eq!(display, spec, "Display must reproduce the input");
            let reparsed = FaultPlan::parse(&display).unwrap();
            assert_eq!(plan, reparsed, "parse(Display) must reproduce the plan");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "panic",
            "panic@x",
            "delay@1:1",
            "warp@0",
            "panic@1:0",
            "panic@1:3-2",
            "crash@5:2",
            "read_stall@1",
            "read_stall@1:1",
            "conn_refuse@1=5",
            "torn_response@x",
            "garble@1:0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn transport_faults_are_addressed_by_dispatch_attempt() {
        let p = FaultPlan::parse("conn_refuse@0:1,read_stall@1:2=75,torn_response@2,garble@0:3")
            .unwrap();
        assert!(p.has_transport_faults());
        assert_eq!(p.transport_fault(0, 1), Some(FaultKind::ConnRefuse));
        assert_eq!(p.transport_fault(0, 2), None);
        assert_eq!(p.transport_fault(0, 3), Some(FaultKind::Garble));
        assert_eq!(p.transport_fault(1, 2), Some(FaultKind::ReadStall { ms: 75 }));
        assert_eq!(p.transport_fault(1, 1), None);
        assert_eq!(p.transport_fault(2, 9), Some(FaultKind::TornResponse));
        // Transport kinds never leak into the compute-pool predicates.
        assert!(!p.should_panic(0, 1) && !p.build_error(0, 1) && !p.poison_nan(0, 1));
        assert!(p.delay(1, 2).is_none(), "read_stall is not a pool delay");
        // And compute kinds never answer the transport query.
        let q = FaultPlan::parse("panic@0,delay@1=50").unwrap();
        assert!(!q.has_transport_faults());
        assert_eq!(q.transport_fault(0, 1), None);
        assert_eq!(q.transport_fault(1, 1), None);
    }

    #[test]
    fn scattered_is_seed_deterministic() {
        let kinds = [FaultKind::Panic, FaultKind::PoisonNan];
        let a = FaultPlan::scattered(42, 100, 0.3, &kinds);
        let b = FaultPlan::scattered(42, 100, 0.3, &kinds);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "30% of 100 jobs should hit something");
        let c = FaultPlan::scattered(43, 100, 0.3, &kinds);
        assert_ne!(a, c, "different seed, different plan (overwhelmingly)");
        assert!(FaultPlan::scattered(42, 100, 0.0, &kinds).is_empty());
        assert!(FaultPlan::scattered(42, 100, 0.5, &[]).is_empty());
    }
}
