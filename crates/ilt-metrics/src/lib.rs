//! Evaluation metrics of the ICCAD 2013 mask-optimization contest.
//!
//! The DAC 2023 multi-level ILT paper reports five quantities per benchmark
//! case, all implemented here:
//!
//! * **L2** — [`squared_l2`], Definition 1 (nominal print vs target),
//! * **PVB** — [`pvband`], Definition 2 (inner/outer corner XOR area),
//! * **EPE** — [`EpeChecker`], Definition 3 (15 nm threshold, 40 nm spacing),
//! * **#shots** — Definition 4, via `ilt_geom::shot_count`,
//! * **TAT** — [`TurnaroundTimer`].
//!
//! [`EvalReport`] bundles all five for one optimized mask.
//!
//! # Example
//!
//! ```
//! use ilt_field::Field2D;
//! use ilt_metrics::{pvband, squared_l2};
//!
//! let target = Field2D::filled(8, 8, 1.0);
//! let print = Field2D::filled(8, 8, 1.0);
//! assert_eq!(squared_l2(&print, &target, 1.0), 0.0);
//! assert_eq!(pvband(&print, &target, 1.0), 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod epe;
mod report;

pub use epe::{EdgeOrientation, EpeChecker, EpeResult, EpeSite};
pub use report::{pvband, squared_l2, EvalReport, TurnaroundTimer};
