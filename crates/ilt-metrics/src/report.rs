//! Scalar metrics and the per-case evaluation report.

use std::fmt;
use std::time::{Duration, Instant};

use ilt_field::Field2D;
use ilt_geom::shot_count;

use crate::epe::{EpeChecker, EpeResult};

/// Squared L2 loss between a wafer image and the target (Definition 1), in
/// nm^2.
///
/// For binary images this is the differing-pixel count scaled by the pixel
/// area; the wafer image should be the nominal-condition print `Z_norm`.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_metrics::squared_l2;
///
/// let a = Field2D::filled(4, 4, 1.0);
/// let b = Field2D::zeros(4, 4);
/// assert_eq!(squared_l2(&a, &b, 2.0), 64.0); // 16 px * 4 nm^2
/// ```
pub fn squared_l2(wafer: &Field2D, target: &Field2D, nm_per_px: f64) -> f64 {
    wafer.sq_l2_dist(target) * nm_per_px * nm_per_px
}

/// Process variation band (Definition 2): XOR area between the inner and
/// outer corner prints, in nm^2.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn pvband(inner: &Field2D, outer: &Field2D, nm_per_px: f64) -> f64 {
    inner.xor_count(outer) as f64 * nm_per_px * nm_per_px
}

/// Wall-clock turnaround timer for the "TAT" column.
///
/// # Examples
///
/// ```
/// use ilt_metrics::TurnaroundTimer;
/// let timer = TurnaroundTimer::start();
/// let elapsed = timer.elapsed();
/// assert!(elapsed.as_secs_f64() >= 0.0);
/// ```
#[derive(Debug)]
pub struct TurnaroundTimer {
    start: Instant,
}

impl TurnaroundTimer {
    /// Starts the clock.
    pub fn start() -> Self {
        TurnaroundTimer { start: Instant::now() }
    }

    /// Time since [`TurnaroundTimer::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Full per-case evaluation: the five columns of the paper's tables.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Squared L2 loss in nm^2 ("L2").
    pub l2_nm2: f64,
    /// Process variation band in nm^2 ("PVB").
    pub pvband_nm2: f64,
    /// EPE evaluation ("EPE" is [`EpeResult::violations`]).
    pub epe: EpeResult,
    /// Mask fracturing shot count ("#shots").
    pub shots: usize,
    /// Turnaround time in seconds ("TAT").
    pub tat_seconds: f64,
}

impl EvalReport {
    /// Evaluates a finished mask against a target.
    ///
    /// `prints` are the three corner wafer images; `mask` the final binary
    /// mask. `tat` is the measured optimization wall time.
    ///
    /// # Panics
    ///
    /// Panics if image shapes disagree.
    pub fn evaluate(
        target: &Field2D,
        mask: &Field2D,
        nominal: &Field2D,
        inner: &Field2D,
        outer: &Field2D,
        checker: &EpeChecker,
        tat: Duration,
    ) -> Self {
        let nm = checker.nm_per_px;
        EvalReport {
            l2_nm2: squared_l2(nominal, target, nm),
            pvband_nm2: pvband(inner, outer, nm),
            epe: checker.check(target, nominal),
            shots: shot_count(mask),
            tat_seconds: tat.as_secs_f64(),
        }
    }

    /// EPE violation count.
    pub fn epe_violations(&self) -> usize {
        self.epe.violations()
    }
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L2 {:>10.0} nm^2 | PVB {:>10.0} nm^2 | EPE {:>3} | #shots {:>5} | TAT {:>7.2} s",
            self.l2_nm2,
            self.pvband_nm2,
            self.epe_violations(),
            self.shots,
            self.tat_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_geom::{rasterize_rects, Rect};

    #[test]
    fn squared_l2_counts_differences() {
        let a = Field2D::from_vec(1, 4, vec![1.0, 1.0, 0.0, 0.0]);
        let b = Field2D::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(squared_l2(&a, &b, 1.0), 2.0);
        assert_eq!(squared_l2(&a, &a, 1.0), 0.0);
    }

    #[test]
    fn pvband_is_symmetric_xor_area() {
        let a = rasterize_rects(&[Rect::new(0, 0, 4, 4)], 8, 8);
        let b = rasterize_rects(&[Rect::new(2, 2, 6, 6)], 8, 8);
        let band = pvband(&a, &b, 1.0);
        assert_eq!(band, pvband(&b, &a, 1.0));
        // XOR of two offset 4x4 squares: 16 + 16 - 2 * 4 = 24.
        assert_eq!(band, 24.0);
    }

    #[test]
    fn eval_report_aggregates_all_metrics() {
        let target = rasterize_rects(&[Rect::new(20, 20, 60, 60)], 128, 128);
        let mask = target.clone();
        let nominal = target.clone();
        let inner = rasterize_rects(&[Rect::new(21, 21, 59, 59)], 128, 128);
        let outer = rasterize_rects(&[Rect::new(19, 19, 61, 61)], 128, 128);
        let report = EvalReport::evaluate(
            &target,
            &mask,
            &nominal,
            &inner,
            &outer,
            &EpeChecker::default(),
            Duration::from_millis(1500),
        );
        assert_eq!(report.l2_nm2, 0.0);
        assert!(report.pvband_nm2 > 0.0);
        assert_eq!(report.epe_violations(), 0);
        assert_eq!(report.shots, 1);
        assert!((report.tat_seconds - 1.5).abs() < 1e-9);
        let line = report.to_string();
        assert!(line.contains("L2") && line.contains("#shots"));
    }

    #[test]
    fn pixel_pitch_scales_areas_quadratically() {
        let a = Field2D::filled(2, 2, 1.0);
        let b = Field2D::zeros(2, 2);
        assert_eq!(squared_l2(&a, &b, 1.0), 4.0);
        assert_eq!(squared_l2(&a, &b, 4.0), 64.0);
        assert_eq!(pvband(&a, &b, 4.0), 64.0);
    }
}
