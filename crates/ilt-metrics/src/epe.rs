//! Edge placement error (Definition 3 of the paper).
//!
//! Measurement points are distributed along the horizontal and vertical
//! contour segments of the *target* image; at each point the printed
//! contour's displacement along the edge normal is measured, and a
//! violation is flagged when it reaches the threshold (15 nm in the ICCAD
//! 2013 setting the paper follows).

use ilt_field::Field2D;

/// Orientation of a target contour segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeOrientation {
    /// Edge runs horizontally; its normal is vertical.
    Horizontal,
    /// Edge runs vertically; its normal is horizontal.
    Vertical,
}

/// One EPE measurement site and its outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpeSite {
    /// Row of the measurement point (an inside pixel adjacent to the edge).
    pub row: usize,
    /// Column of the measurement point.
    pub col: usize,
    /// Orientation of the measured edge.
    pub orientation: EdgeOrientation,
    /// Outward normal of the target edge, as (drow, dcol) signs.
    pub outward: (i8, i8),
    /// Signed displacement in nm: positive when the printed contour grew
    /// outward past the target edge, negative when it receded inward.
    /// Saturates at the threshold when no contour is found in the window.
    pub displacement_nm: f64,
    /// Whether this site violates the EPE threshold
    /// (`|displacement| >= threshold`).
    pub violation: bool,
}

/// Result of an EPE evaluation over a full clip.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpeResult {
    /// All measurement sites with their outcomes.
    pub sites: Vec<EpeSite>,
}

impl EpeResult {
    /// Number of violating sites — the paper's "EPE" column.
    pub fn violations(&self) -> usize {
        self.sites.iter().filter(|s| s.violation).count()
    }

    /// Total number of measurement points.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }
}

/// Edge-placement-error checker.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_metrics::EpeChecker;
///
/// let target = Field2D::from_fn(64, 64, |r, c| {
///     if (16..48).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
/// });
/// // A perfect print has zero violations.
/// let checker = EpeChecker::default();
/// assert_eq!(checker.check(&target, &target).violations(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpeChecker {
    /// Violation threshold in nm (paper: 15 nm).
    pub threshold_nm: f64,
    /// Spacing between measurement points along an edge, in nm (40 nm in
    /// the contest convention).
    pub spacing_nm: f64,
    /// Physical pixel pitch in nm.
    pub nm_per_px: f64,
    /// Distance from segment ends within which no point is placed, in nm.
    pub corner_guard_nm: f64,
}

impl Default for EpeChecker {
    fn default() -> Self {
        EpeChecker {
            threshold_nm: 15.0,
            spacing_nm: 40.0,
            nm_per_px: 1.0,
            corner_guard_nm: 10.0,
        }
    }
}

impl EpeChecker {
    /// Evaluates EPE of `printed` against `target` (both binary, foreground
    /// `>= 0.5`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn check(&self, target: &Field2D, printed: &Field2D) -> EpeResult {
        assert_eq!(target.shape(), printed.shape(), "target/printed shape mismatch");
        let mut sites = Vec::new();
        for seg in extract_segments(target) {
            for &(r, c) in &self.measure_points(&seg) {
                let d = self.displacement(printed, r, c, seg.orientation, seg.outward);
                sites.push(EpeSite {
                    row: r,
                    col: c,
                    orientation: seg.orientation,
                    outward: (seg.outward.0 as i8, seg.outward.1 as i8),
                    displacement_nm: d,
                    violation: d.abs() >= self.threshold_nm,
                });
            }
        }
        EpeResult { sites }
    }

    /// Places measurement points along a segment: spaced `spacing_nm`,
    /// avoiding `corner_guard_nm` at the ends, with at least a midpoint.
    fn measure_points(&self, seg: &Segment) -> Vec<(usize, usize)> {
        let spacing = (self.spacing_nm / self.nm_per_px).max(1.0) as usize;
        let guard = (self.corner_guard_nm / self.nm_per_px).round() as usize;
        let len = seg.len();
        let mut offsets = Vec::new();
        if len > 2 * guard + 1 {
            let usable = len - 2 * guard;
            let count = usable.div_ceil(spacing);
            // Center the points in the usable span.
            let pitch = usable as f64 / count as f64;
            for i in 0..count {
                offsets.push(guard + (pitch * (i as f64 + 0.5)) as usize);
            }
        } else {
            offsets.push(len / 2);
        }
        offsets.into_iter().map(|o| seg.point_at(o)).collect()
    }

    /// Signed distance (nm) from the target edge to the printed contour
    /// along the edge normal: positive when the print grew outward,
    /// negative when it receded. Saturates at `+-threshold_nm` when no
    /// crossing is found in the window.
    fn displacement(
        &self,
        printed: &Field2D,
        r: usize,
        c: usize,
        orientation: EdgeOrientation,
        outward: (isize, isize),
    ) -> f64 {
        // (r, c) is the inside pixel hugging the edge. The printed contour
        // is where `printed` crosses 0.5 walking along +-normal.
        let (rows, cols) = printed.shape();
        let max_steps = (self.threshold_nm / self.nm_per_px).ceil() as isize + 1;
        let on = |rr: isize, cc: isize| -> bool {
            rr >= 0
                && cc >= 0
                && (rr as usize) < rows
                && (cc as usize) < cols
                && printed[(rr as usize, cc as usize)] >= 0.5
        };
        let (dr, dc) = match orientation {
            EdgeOrientation::Horizontal => (outward.0, 0),
            EdgeOrientation::Vertical => (0, outward.1),
        };
        let inside_printed = on(r as isize, c as isize);
        // Walk in the direction where the contour must be: outward if the
        // measurement pixel prints (edge is at or beyond the target edge),
        // inward if it does not (printed contour receded).
        let (step, sign) = if inside_printed { (1, 1.0) } else { (-1, -1.0) };
        for t in 0..max_steps {
            let rr = r as isize + (t + 1) * step * dr;
            let cc = c as isize + (t + 1) * step * dc;
            if on(rr, cc) != inside_printed {
                // Contour sits between step t and t+1 from the edge pixel;
                // the target edge itself is half a pixel outward of (r, c).
                return sign * (t as f64 + 0.5) * self.nm_per_px;
            }
        }
        sign * self.threshold_nm
    }
}

/// A maximal straight contour segment of the target.
#[derive(Clone, Debug)]
struct Segment {
    orientation: EdgeOrientation,
    /// Fixed coordinate: the row (horizontal) or column (vertical) of the
    /// *inside* pixels hugging the edge.
    fixed: usize,
    /// Running-coordinate range `[start, end)`.
    start: usize,
    end: usize,
    /// Outward normal as (drow, dcol) signs.
    outward: (isize, isize),
}

impl Segment {
    fn len(&self) -> usize {
        self.end - self.start
    }

    fn point_at(&self, offset: usize) -> (usize, usize) {
        let run = (self.start + offset).min(self.end - 1);
        match self.orientation {
            EdgeOrientation::Horizontal => (self.fixed, run),
            EdgeOrientation::Vertical => (run, self.fixed),
        }
    }
}

/// Extracts maximal straight edge segments of the target's contour. A
/// segment is a run of inside pixels that all have an outside neighbor on
/// the same side.
fn extract_segments(target: &Field2D) -> Vec<Segment> {
    let (rows, cols) = target.shape();
    let on = |r: isize, c: isize| -> bool {
        r >= 0
            && c >= 0
            && (r as usize) < rows
            && (c as usize) < cols
            && target[(r as usize, c as usize)] >= 0.5
    };
    let mut segs = Vec::new();

    // Horizontal edges: inside pixel with an outside neighbor above/below.
    for side in [(-1isize, 0isize), (1, 0)] {
        for r in 0..rows {
            let mut c = 0;
            while c < cols {
                let is_edge = on(r as isize, c as isize)
                    && !on(r as isize + side.0, c as isize + side.1);
                if is_edge {
                    let start = c;
                    while c < cols
                        && on(r as isize, c as isize)
                        && !on(r as isize + side.0, c as isize + side.1)
                    {
                        c += 1;
                    }
                    segs.push(Segment {
                        orientation: EdgeOrientation::Horizontal,
                        fixed: r,
                        start,
                        end: c,
                        outward: side,
                    });
                } else {
                    c += 1;
                }
            }
        }
    }

    // Vertical edges: inside pixel with an outside neighbor left/right.
    for side in [(0isize, -1isize), (0, 1)] {
        for c in 0..cols {
            let mut r = 0;
            while r < rows {
                let is_edge = on(r as isize, c as isize)
                    && !on(r as isize + side.0, c as isize + side.1);
                if is_edge {
                    let start = r;
                    while r < rows
                        && on(r as isize, c as isize)
                        && !on(r as isize + side.0, c as isize + side.1)
                    {
                        r += 1;
                    }
                    segs.push(Segment {
                        orientation: EdgeOrientation::Vertical,
                        fixed: c,
                        start,
                        end: r,
                        outward: side,
                    });
                } else {
                    r += 1;
                }
            }
        }
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_geom::{rasterize_rects, Rect};

    fn square(rows: usize, r: Rect) -> Field2D {
        rasterize_rects(&[r], rows, rows)
    }

    #[test]
    fn perfect_print_has_zero_violations() {
        let t = square(128, Rect::new(30, 30, 90, 90));
        let res = EpeChecker::default().check(&t, &t);
        assert!(res.num_sites() > 0);
        assert_eq!(res.violations(), 0);
        for s in &res.sites {
            assert!(s.displacement_nm <= 1.0, "{s:?}");
        }
    }

    #[test]
    fn uniformly_grown_print_within_threshold_passes() {
        let t = square(128, Rect::new(30, 30, 90, 90));
        let p = square(128, Rect::new(25, 25, 95, 95)); // grown by 5 px
        let res = EpeChecker::default().check(&t, &p);
        assert_eq!(res.violations(), 0);
        for s in &res.sites {
            assert!((s.displacement_nm - 5.5).abs() < 1.01, "{s:?}");
        }
    }

    #[test]
    fn severely_shrunk_print_violates_everywhere() {
        let t = square(128, Rect::new(30, 30, 90, 90));
        let p = square(128, Rect::new(50, 50, 70, 70)); // receded by 20 px
        let res = EpeChecker::default().check(&t, &p);
        assert!(res.num_sites() > 0);
        assert_eq!(res.violations(), res.num_sites());
    }

    #[test]
    fn missing_print_is_all_violations() {
        let t = square(64, Rect::new(10, 10, 50, 50));
        let p = Field2D::zeros(64, 64);
        let res = EpeChecker::default().check(&t, &p);
        assert_eq!(res.violations(), res.num_sites());
    }

    #[test]
    fn one_bad_edge_is_localized() {
        // Target square; print matches except the right edge recedes 20 px.
        let t = square(128, Rect::new(30, 30, 90, 90));
        let p = square(128, Rect::new(30, 30, 90, 70));
        let res = EpeChecker::default().check(&t, &p);
        assert!(res.violations() > 0);
        assert!(res.violations() < res.num_sites());
        // All violations are vertical-edge sites on the receded side.
        for s in res.sites.iter().filter(|s| s.violation) {
            assert_eq!(s.orientation, EdgeOrientation::Vertical);
            assert!(s.col >= 70, "{s:?}");
        }
    }

    #[test]
    fn spacing_controls_site_count() {
        let t = square(256, Rect::new(20, 20, 236, 236));
        let coarse = EpeChecker { spacing_nm: 80.0, ..EpeChecker::default() };
        let fine = EpeChecker { spacing_nm: 20.0, ..EpeChecker::default() };
        let nc = coarse.check(&t, &t).num_sites();
        let nf = fine.check(&t, &t).num_sites();
        assert!(nf > nc * 2, "fine {nf} vs coarse {nc}");
    }

    #[test]
    fn short_segments_get_a_midpoint() {
        // A 6x6 feature is shorter than 2 * corner guard: one point per edge.
        let t = square(64, Rect::new(30, 30, 36, 36));
        let res = EpeChecker::default().check(&t, &t);
        assert_eq!(res.num_sites(), 4);
    }

    #[test]
    fn nm_per_px_scales_distances() {
        // With 4 nm pixels, a 4-pixel recession is 16 nm >= 15 nm threshold.
        let t = square(64, Rect::new(16, 16, 48, 48));
        let p = square(64, Rect::new(16, 21, 48, 48)); // left edge recedes 5 px
        let checker = EpeChecker { nm_per_px: 4.0, ..EpeChecker::default() };
        let res = checker.check(&t, &p);
        assert!(res.violations() > 0);
        let checker1 = EpeChecker { nm_per_px: 1.0, ..EpeChecker::default() };
        assert_eq!(checker1.check(&t, &p).violations(), 0, "5 nm at 1 nm/px is fine");
    }
}
