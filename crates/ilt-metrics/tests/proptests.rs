// Gated behind `slow-tests`: proptest comes from the registry, which the
// hermetic tier-1 build never touches. To run these, restore the `proptest`
// dev-dependency in Cargo.toml and pass `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! Property-based tests of the contest metrics on random rectangle
//! geometry.

use ilt_field::Field2D;
use ilt_geom::{rasterize_rects, Rect};
use ilt_metrics::{pvband, squared_l2, EpeChecker};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    // Rects large enough that EPE measurement sites exist, placed so a
    // uniform grow of up to 25 px never clips at the 128-px clip border.
    (26usize..40, 26usize..40, 20usize..50, 20usize..50)
        .prop_map(|(r0, c0, h, w)| Rect::new(r0, c0, (r0 + h).min(96), (c0 + w).min(96)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A perfect print never violates EPE, whatever the target geometry.
    #[test]
    fn perfect_print_is_violation_free(r in rect_strategy()) {
        let target = rasterize_rects(&[r], 128, 128);
        let res = EpeChecker::default().check(&target, &target);
        prop_assert!(res.num_sites() > 0);
        prop_assert_eq!(res.violations(), 0);
    }

    /// Uniform edge bias below the threshold passes; above it, every site
    /// violates. (The EPE threshold is 15 nm at 1 nm/px.)
    #[test]
    fn uniform_bias_threshold_behaviour(r in rect_strategy(), grow in 1usize..25) {
        let target = rasterize_rects(&[r], 128, 128);
        let grown = Rect::new(
            r.r0.saturating_sub(grow),
            r.c0.saturating_sub(grow),
            (r.r1 + grow).min(128),
            (r.c1 + grow).min(128),
        );
        let printed = rasterize_rects(&[grown], 128, 128);
        let res = EpeChecker::default().check(&target, &printed);
        // Displacement measured from the target edge is ~grow + 0.5.
        if grow + 1 < 15 {
            prop_assert_eq!(res.violations(), 0, "grow {} should pass", grow);
        }
        if grow > 15 {
            prop_assert_eq!(res.violations(), res.num_sites(), "grow {} should fail everywhere", grow);
        }
        // All displacements are positive (outward growth).
        for s in &res.sites {
            prop_assert!(s.displacement_nm > 0.0);
        }
    }

    /// Shrinkage produces negative displacements.
    #[test]
    fn shrinkage_is_negative(r in rect_strategy()) {
        let target = rasterize_rects(&[r], 128, 128);
        let shrunk = Rect::new(r.r0 + 3, r.c0 + 3, r.r1 - 3, r.c1 - 3);
        let printed = rasterize_rects(&[shrunk], 128, 128);
        let res = EpeChecker::default().check(&target, &printed);
        for s in &res.sites {
            prop_assert!(s.displacement_nm < 0.0, "{s:?}");
        }
    }

    /// L2 and PVBand are symmetric, nonnegative, and zero on identity.
    #[test]
    fn metric_axioms(a in rect_strategy(), b in rect_strategy(), nm in 0.5f64..8.0) {
        let x = rasterize_rects(&[a], 128, 128);
        let y = rasterize_rects(&[b], 128, 128);
        prop_assert_eq!(squared_l2(&x, &y, nm), squared_l2(&y, &x, nm));
        prop_assert_eq!(pvband(&x, &y, nm), pvband(&y, &x, nm));
        prop_assert_eq!(squared_l2(&x, &x, nm), 0.0);
        prop_assert_eq!(pvband(&x, &x, nm), 0.0);
        prop_assert!(squared_l2(&x, &y, nm) >= 0.0);
        // For binary images, L2 and PVBand coincide (both are XOR areas).
        prop_assert!((squared_l2(&x, &y, nm) - pvband(&x, &y, nm)).abs() < 1e-9);
    }

    /// EPE site count scales with the target perimeter, not its area.
    #[test]
    fn epe_sites_track_perimeter(scale in 1usize..3) {
        let small = rasterize_rects(&[Rect::new(40, 40, 60, 60)], 256, 256);
        let big = rasterize_rects(
            &[Rect::new(40, 40, 40 + 20 * (scale + 1), 40 + 20 * (scale + 1))],
            256,
            256,
        );
        let checker = EpeChecker::default();
        let n_small = checker.check(&small, &small).num_sites();
        let n_big = checker.check(&big, &big).num_sites();
        prop_assert!(n_big >= n_small);
    }

    /// The checker never reads outside the clip: targets touching the
    /// border are handled without panicking.
    #[test]
    fn border_targets_are_safe(side in 0usize..4) {
        let r = match side {
            0 => Rect::new(0, 30, 30, 70),
            1 => Rect::new(30, 0, 70, 30),
            2 => Rect::new(98, 30, 128, 70),
            _ => Rect::new(30, 98, 70, 128),
        };
        let target = rasterize_rects(&[r], 128, 128);
        let res = EpeChecker::default().check(&target, &Field2D::zeros(128, 128));
        prop_assert_eq!(res.violations(), res.num_sites());
    }
}
