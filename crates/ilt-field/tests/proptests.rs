// Gated behind `slow-tests`: proptest comes from the registry, which the
// hermetic tier-1 build never touches. To run these, restore the `proptest`
// dev-dependency in Cargo.toml and pass `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! Property-based tests for field operators.

use ilt_field::{avg_pool_down, avg_pool_same, upsample_bilinear, upsample_nearest, Field2D};
use proptest::prelude::*;

fn field(rows: usize, cols: usize) -> impl Strategy<Value = Field2D> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Field2D::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Downsampling preserves the global mean exactly.
    #[test]
    fn pool_down_preserves_mean(f in field(8, 8), s in prop::sample::select(vec![1usize, 2, 4, 8])) {
        let p = avg_pool_down(&f, s);
        prop_assert!((p.mean() - f.mean()).abs() < 1e-10);
    }

    /// pool(upsample(f, s), s) == f for any field and factor.
    #[test]
    fn pool_inverts_upsample(f in field(6, 4), s in 1usize..=4) {
        let u = upsample_nearest(&f, s);
        let back = avg_pool_down(&u, s);
        for (a, b) in back.as_slice().iter().zip(f.as_slice()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// Smoothing cannot expand the value range (zero padding can only pull
    /// toward zero, which we account for by extending the range with 0).
    #[test]
    fn smoothing_is_range_bounded(f in field(8, 8), n in prop::sample::select(vec![1usize, 3, 5])) {
        let s = avg_pool_same(&f, n);
        let lo = f.min().min(0.0) - 1e-12;
        let hi = f.max().max(0.0) + 1e-12;
        for &v in s.as_slice() {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Smoothing preserves the sum of interior-heavy fields exactly when the
    /// border is zero (every window sum is complete).
    #[test]
    fn smoothing_preserves_sum_with_zero_border(inner in field(6, 6)) {
        let mut f = Field2D::zeros(10, 10);
        f.paste(&inner, 2, 2);
        let s = avg_pool_same(&f, 3);
        prop_assert!((s.sum() - f.sum()).abs() < 1e-9);
    }

    /// Bilinear upsampling stays within the source value range.
    #[test]
    fn bilinear_range_bounded(f in field(5, 5), s in 1usize..=4) {
        let u = upsample_bilinear(&f, s);
        prop_assert!(u.min() >= f.min() - 1e-12);
        prop_assert!(u.max() <= f.max() + 1e-12);
    }

    /// Thresholding is idempotent.
    #[test]
    fn threshold_idempotent(f in field(6, 6), t in -5.0f64..5.0) {
        let b = f.threshold(t);
        prop_assert_eq!(b.threshold(0.5), b.clone());
        for &v in b.as_slice() {
            prop_assert!(v == 0.0 || v == 1.0);
        }
    }

    /// XOR count is symmetric and zero against self.
    #[test]
    fn xor_symmetry(a in field(5, 5), b in field(5, 5)) {
        prop_assert_eq!(a.xor_count(&b), b.xor_count(&a));
        prop_assert_eq!(a.xor_count(&a), 0);
    }

    /// crop is a partial inverse of paste.
    #[test]
    fn crop_inverts_paste(inner in field(3, 4), r0 in 0usize..5, c0 in 0usize..4) {
        let mut big = Field2D::zeros(8, 8);
        big.paste(&inner, r0, c0);
        prop_assert_eq!(big.crop(r0, c0, 3, 4), inner);
    }
}
