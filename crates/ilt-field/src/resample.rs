//! Pooling and resampling operators from Algorithm 1 of the paper.
//!
//! Three operators appear in the multi-level ILT loop:
//!
//! * [`avg_pool_down`] — kernel `s`, stride `s` (lines 2 and 9): lossless*
//!   shrink of target/wafer images before the loss.
//! * [`avg_pool_same`] — kernel `n`, stride 1, zero padding (line 11): the
//!   contour-smoothing pool applied to the mask in every low-resolution
//!   iteration (Section III-D).
//! * [`upsample_nearest`] — scale `s` (line 7): restores the downsampled mask
//!   to full size for the accurate high-resolution simulation.
//!
//! Padding semantics of [`avg_pool_same`] follow `torch.nn.AvgPool2d` with
//! `count_include_pad = true` (divide by the full kernel area even when the
//! window hangs off the border), since the reference implementation is
//! PyTorch.

use crate::field::Field2D;

/// Average pooling with `kernel = stride = s` (downsampling by `s`).
///
/// Output shape is `(rows / s, cols / s)`.
///
/// # Panics
///
/// Panics if `s == 0` or either dimension is not divisible by `s`.
///
/// # Examples
///
/// ```
/// use ilt_field::{Field2D, avg_pool_down};
///
/// let f = Field2D::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
/// let p = avg_pool_down(&f, 2);
/// assert_eq!(p.shape(), (1, 1));
/// assert_eq!(p[(0, 0)], 1.5);
/// ```
pub fn avg_pool_down(f: &Field2D, s: usize) -> Field2D {
    assert!(s > 0, "pool factor must be positive");
    let (rows, cols) = f.shape();
    assert!(
        rows % s == 0 && cols % s == 0,
        "shape {rows}x{cols} not divisible by pool factor {s}"
    );
    if s == 1 {
        return f.clone();
    }
    let (or, oc) = (rows / s, cols / s);
    let inv = 1.0 / (s * s) as f64;
    let src = f.as_slice();
    let mut out = Vec::with_capacity(or * oc);
    for r in 0..or {
        for c in 0..oc {
            let mut acc = 0.0;
            for dr in 0..s {
                let row = &src[(r * s + dr) * cols + c * s..(r * s + dr) * cols + c * s + s];
                for &v in row {
                    acc += v;
                }
            }
            out.push(acc * inv);
        }
    }
    Field2D::from_vec(or, oc, out)
}

/// Same-size average pooling: kernel `n x n`, stride 1, zero padding
/// `(n-1)/2`, dividing by the full `n^2` (PyTorch `count_include_pad`).
///
/// This is the smoothing operator of Section III-D (the paper uses `n = 3`):
/// each pixel takes the mean of its neighborhood, so mask updates become
/// spatially coherent and holes/fractures are suppressed.
///
/// # Panics
///
/// Panics if `n` is zero or even (the window must have a center pixel).
///
/// # Examples
///
/// ```
/// use ilt_field::{Field2D, avg_pool_same};
///
/// let f = Field2D::from_fn(3, 3, |r, c| if (r, c) == (1, 1) { 9.0 } else { 0.0 });
/// let s = avg_pool_same(&f, 3);
/// // The impulse spreads to 1.0 over its 3x3 neighborhood.
/// assert!(s.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-12));
/// ```
pub fn avg_pool_same(f: &Field2D, n: usize) -> Field2D {
    assert!(n % 2 == 1, "smoothing kernel size must be odd, got {n}");
    if n == 1 {
        return f.clone();
    }
    let (rows, cols) = f.shape();
    let h = (n / 2) as isize;
    let inv = 1.0 / (n * n) as f64;
    let src = f.as_slice();

    // Separable implementation: horizontal prefix pass then vertical pass.
    let mut horiz = vec![0.0; rows * cols];
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        for c in 0..cols {
            let lo = (c as isize - h).max(0) as usize;
            let hi = ((c as isize + h) as usize).min(cols - 1);
            horiz[r * cols + c] = row[lo..=hi].iter().sum();
        }
    }
    let mut out = vec![0.0; rows * cols];
    for c in 0..cols {
        for r in 0..rows {
            let lo = (r as isize - h).max(0) as usize;
            let hi = ((r as isize + h) as usize).min(rows - 1);
            let mut acc = 0.0;
            for rr in lo..=hi {
                acc += horiz[rr * cols + c];
            }
            out[r * cols + c] = acc * inv;
        }
    }
    Field2D::from_vec(rows, cols, out)
}

/// Nearest-neighbor upsampling by integer factor `s` (each pixel becomes an
/// `s x s` block).
///
/// # Panics
///
/// Panics if `s == 0`.
///
/// # Examples
///
/// ```
/// use ilt_field::{Field2D, upsample_nearest};
///
/// let f = Field2D::from_vec(1, 2, vec![1.0, 2.0]);
/// let u = upsample_nearest(&f, 2);
/// assert_eq!(u.shape(), (2, 4));
/// assert_eq!(u.as_slice(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
/// ```
pub fn upsample_nearest(f: &Field2D, s: usize) -> Field2D {
    assert!(s > 0, "upsample factor must be positive");
    if s == 1 {
        return f.clone();
    }
    let (rows, cols) = f.shape();
    let src = f.as_slice();
    let (or, oc) = (rows * s, cols * s);
    let mut out = vec![0.0; or * oc];
    for r in 0..rows {
        // Expand one source row into one output row, then replicate it.
        let base = r * s * oc;
        for c in 0..cols {
            let v = src[r * cols + c];
            out[base + c * s..base + c * s + s].fill(v);
        }
        let (head, tail) = out.split_at_mut(base + oc);
        let template = &head[base..base + oc];
        for dr in 1..s {
            tail[(dr - 1) * oc..dr * oc].copy_from_slice(template);
        }
    }
    Field2D::from_vec(or, oc, out)
}

/// Bilinear upsampling by integer factor `s` with half-pixel alignment.
///
/// Used by post-processing to visualize low-resolution masks smoothly; the
/// optimization path itself uses [`upsample_nearest`], matching Algorithm 1.
///
/// # Panics
///
/// Panics if `s == 0`.
pub fn upsample_bilinear(f: &Field2D, s: usize) -> Field2D {
    assert!(s > 0, "upsample factor must be positive");
    if s == 1 {
        return f.clone();
    }
    let (rows, cols) = f.shape();
    let (or, oc) = (rows * s, cols * s);
    let src = f.as_slice();
    Field2D::from_fn(or, oc, |r, c| {
        // Map output pixel center to source coordinates (align corners=false).
        let sy = ((r as f64 + 0.5) / s as f64 - 0.5).clamp(0.0, rows as f64 - 1.0);
        let sx = ((c as f64 + 0.5) / s as f64 - 0.5).clamp(0.0, cols as f64 - 1.0);
        let (y0, x0) = (sy.floor() as usize, sx.floor() as usize);
        let (y1, x1) = ((y0 + 1).min(rows - 1), (x0 + 1).min(cols - 1));
        let (fy, fx) = (sy - y0 as f64, sx - x0 as f64);
        let top = src[y0 * cols + x0] * (1.0 - fx) + src[y0 * cols + x1] * fx;
        let bot = src[y1 * cols + x0] * (1.0 - fx) + src[y1 * cols + x1] * fx;
        top * (1.0 - fy) + bot * fy
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_down_preserves_mean() {
        let f = Field2D::from_fn(8, 8, |r, c| ((r * 13 + c * 7) % 11) as f64);
        for s in [1, 2, 4, 8] {
            let p = avg_pool_down(&f, s);
            assert!((p.mean() - f.mean()).abs() < 1e-12, "s={s}");
            assert_eq!(p.shape(), (8 / s, 8 / s));
        }
    }

    #[test]
    fn avg_pool_down_exact_values() {
        let f = Field2D::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let p = avg_pool_down(&f, 2);
        assert_eq!(p.as_slice(), &[3.5, 5.5]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn avg_pool_down_indivisible_panics() {
        let _ = avg_pool_down(&Field2D::zeros(6, 6), 4);
    }

    #[test]
    fn avg_pool_same_is_identity_for_constant_interior() {
        // Interior pixels of a constant field stay constant; borders shrink
        // because of zero padding (count_include_pad semantics).
        let f = Field2D::filled(5, 5, 3.0);
        let s = avg_pool_same(&f, 3);
        assert!((s[(2, 2)] - 3.0).abs() < 1e-12);
        assert!((s[(0, 0)] - 3.0 * 4.0 / 9.0).abs() < 1e-12);
        assert!((s[(0, 2)] - 3.0 * 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn avg_pool_same_matches_naive() {
        let f = Field2D::from_fn(7, 6, |r, c| ((r * 5 + c * 3) % 9) as f64 - 4.0);
        let fast = avg_pool_same(&f, 3);
        let (rows, cols) = f.shape();
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = 0.0;
                for dr in -1isize..=1 {
                    for dc in -1isize..=1 {
                        let (rr, cc) = (r as isize + dr, c as isize + dc);
                        if rr >= 0 && cc >= 0 && (rr as usize) < rows && (cc as usize) < cols {
                            acc += f[(rr as usize, cc as usize)];
                        }
                    }
                }
                assert!((fast[(r, c)] - acc / 9.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn avg_pool_same_kernel_one_is_identity() {
        let f = Field2D::from_fn(4, 4, |r, c| (r + 2 * c) as f64);
        assert_eq!(avg_pool_same(&f, 1), f);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn avg_pool_same_even_kernel_panics() {
        let _ = avg_pool_same(&Field2D::zeros(4, 4), 2);
    }

    #[test]
    fn upsample_then_pool_is_identity() {
        let f = Field2D::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        for s in [1, 2, 3] {
            let u = upsample_nearest(&f, s);
            assert_eq!(avg_pool_down(&u, s), f, "s={s}");
        }
    }

    #[test]
    fn upsample_nearest_block_structure() {
        let f = Field2D::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let u = upsample_nearest(&f, 3);
        assert_eq!(u.shape(), (6, 6));
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(u[(r, c)], f[(r / 3, c / 3)]);
            }
        }
    }

    #[test]
    fn bilinear_preserves_constants_and_range() {
        let f = Field2D::filled(3, 3, 0.7);
        let u = upsample_bilinear(&f, 4);
        assert_eq!(u.shape(), (12, 12));
        for &v in u.as_slice() {
            assert!((v - 0.7).abs() < 1e-12);
        }

        let g = Field2D::from_fn(4, 4, |r, _| r as f64);
        let ug = upsample_bilinear(&g, 2);
        assert!(ug.min() >= g.min() - 1e-12 && ug.max() <= g.max() + 1e-12);
    }

    #[test]
    fn bilinear_scale_one_is_identity() {
        let f = Field2D::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(upsample_bilinear(&f, 1), f);
    }
}
