//! The [`Field2D`] container: a dense, row-major 2-D grid of `f64` samples.
//!
//! Masks, aerial images and wafer images are all `Field2D` values. The type
//! deliberately stays dumb — shape plus storage — with a small algebra of
//! elementwise and reduction operations; domain semantics (what a pixel
//! means) live in the crates above.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense row-major 2-D grid of `f64` values.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
///
/// let mut f = Field2D::zeros(2, 3);
/// f[(1, 2)] = 5.0;
/// assert_eq!(f.sum(), 5.0);
/// assert_eq!(f.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq)]
pub struct Field2D {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Field2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Field2D({}x{}", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, ", {:?}", self.data)?;
        } else {
            write!(
                f,
                ", min={:.4}, max={:.4}, mean={:.4}",
                self.min(),
                self.max(),
                self.mean()
            )?;
        }
        write!(f, ")")
    }
}

impl Field2D {
    /// Creates a field of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Field2D { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a field filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Field2D { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Field2D { rows, cols, data }
    }

    /// Builds a field by evaluating `f(row, col)` at every pixel.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_field::Field2D;
    /// let ramp = Field2D::from_fn(2, 2, |r, c| (r + c) as f64);
    /// assert_eq!(ramp[(1, 1)], 2.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Field2D { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a zero-pixel field.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the field, returning its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Bounds-checked pixel access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Applies `f` to every pixel, returning a new field.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Field2D {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every pixel in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape fields pixel-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Field2D, f: impl Fn(f64, f64) -> f64) -> Self {
        self.assert_same_shape(other);
        Field2D {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Multiplies every pixel by `s`, returning a new field.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all pixels.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all pixels (0 for an empty field).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Minimum pixel value (+inf for an empty field).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum pixel value (-inf for an empty field).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Squared L2 distance to another field: `sum((a - b)^2)`.
    ///
    /// This is Definition 1 of the paper when `self` is a wafer image and
    /// `other` the target.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sq_l2_dist(&self, other: &Field2D) -> f64 {
        self.assert_same_shape(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Elementwise product (Hadamard), returning a new field.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Field2D) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Binarizes with threshold `t`: `1.0` where `x >= t`, else `0.0`.
    ///
    /// Implements both the constant-threshold resist model (Eq. 1) and the
    /// final mask binarization (Eq. 12).
    pub fn threshold(&self, t: f64) -> Self {
        self.map(|x| if x >= t { 1.0 } else { 0.0 })
    }

    /// Counts pixels where the binarized values differ (XOR area in pixels).
    ///
    /// Used for PVBand (Definition 2). Inputs are interpreted as binary via
    /// `>= 0.5`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn xor_count(&self, other: &Field2D) -> usize {
        self.assert_same_shape(other);
        self.data
            .iter()
            .zip(&other.data)
            .filter(|(&a, &b)| (a >= 0.5) != (b >= 0.5))
            .count()
    }

    /// Counts pixels with value `>= 0.5` (area of a binary image in pixels).
    pub fn count_on(&self) -> usize {
        self.data.iter().filter(|&&x| x >= 0.5).count()
    }

    /// Extracts the sub-field with top-left corner `(r0, c0)` and shape
    /// `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the field bounds.
    pub fn crop(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(r0 + h <= self.rows && c0 + w <= self.cols, "crop window out of bounds");
        let mut data = Vec::with_capacity(h * w);
        for r in r0..r0 + h {
            data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c0 + w]);
        }
        Field2D { rows: h, cols: w, data }
    }

    /// Copies `src` into this field with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the placement exceeds the field bounds.
    pub fn paste(&mut self, src: &Field2D, r0: usize, c0: usize) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "paste window out of bounds"
        );
        for r in 0..src.rows {
            let dst_off = (r0 + r) * self.cols + c0;
            self.data[dst_off..dst_off + src.cols]
                .copy_from_slice(&src.data[r * src.cols..(r + 1) * src.cols]);
        }
    }

    fn assert_same_shape(&self, other: &Field2D) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "field shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl Index<(usize, usize)> for Field2D {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Field2D {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Field2D {
    type Output = Field2D;
    fn add(self, rhs: &Field2D) -> Field2D {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub for &Field2D {
    type Output = Field2D;
    fn sub(self, rhs: &Field2D) -> Field2D {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Field2D {
    type Output = Field2D;
    fn mul(self, rhs: f64) -> Field2D {
        self.scale(rhs)
    }
}

impl Neg for &Field2D {
    type Output = Field2D;
    fn neg(self) -> Field2D {
        self.map(|x| -x)
    }
}

impl AddAssign<&Field2D> for Field2D {
    fn add_assign(&mut self, rhs: &Field2D) {
        self.assert_same_shape(rhs);
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Field2D> for Field2D {
    fn sub_assign(&mut self, rhs: &Field2D) {
        self.assert_same_shape(rhs);
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Field2D {
        Field2D::from_fn(rows, cols, |r, c| (r * cols + c) as f64)
    }

    #[test]
    fn constructors_and_shape() {
        let z = Field2D::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert_eq!(z.sum(), 0.0);

        let f = Field2D::filled(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);

        let v = Field2D::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_wrong_len_panics() {
        let _ = Field2D::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn indexing_and_rows() {
        let f = ramp(3, 4);
        assert_eq!(f[(2, 3)], 11.0);
        assert_eq!(f.row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(f.get(2, 3), Some(11.0));
        assert_eq!(f.get(3, 0), None);
    }

    #[test]
    fn arithmetic_ops() {
        let a = ramp(2, 2);
        let b = Field2D::filled(2, 2, 1.0);
        assert_eq!((&a + &b).sum(), a.sum() + 4.0);
        assert_eq!((&a - &b).sum(), a.sum() - 4.0);
        assert_eq!((&a * 2.0).sum(), a.sum() * 2.0);
        assert_eq!((-&a).sum(), -a.sum());

        let mut c = a.clone();
        c += &b;
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn reductions() {
        let f = Field2D::from_vec(2, 2, vec![-1.0, 3.0, 0.5, 1.5]);
        assert_eq!(f.min(), -1.0);
        assert_eq!(f.max(), 3.0);
        assert_eq!(f.mean(), 1.0);
    }

    #[test]
    fn sq_l2_dist_matches_manual() {
        let a = Field2D::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Field2D::from_vec(1, 3, vec![0.0, 4.0, 3.0]);
        assert_eq!(a.sq_l2_dist(&b), 1.0 + 4.0);
        assert_eq!(a.sq_l2_dist(&a), 0.0);
    }

    #[test]
    fn threshold_and_xor() {
        let f = Field2D::from_vec(1, 4, vec![0.1, 0.5, 0.9, 0.49]);
        let b = f.threshold(0.5);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
        assert_eq!(b.count_on(), 2);
        let g = Field2D::from_vec(1, 4, vec![1.0, 1.0, 0.0, 0.0]);
        assert_eq!(b.xor_count(&g), 2);
    }

    #[test]
    fn crop_and_paste_roundtrip() {
        let f = ramp(4, 4);
        let sub = f.crop(1, 2, 2, 2);
        assert_eq!(sub.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
        let mut g = Field2D::zeros(4, 4);
        g.paste(&sub, 1, 2);
        assert_eq!(g[(1, 2)], 6.0);
        assert_eq!(g[(2, 3)], 11.0);
        assert_eq!(g[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_out_of_bounds_panics() {
        let _ = ramp(4, 4).crop(3, 3, 2, 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = ramp(2, 2).sq_l2_dist(&ramp(2, 3));
    }

    #[test]
    fn map_and_zip_map() {
        let a = ramp(2, 2);
        assert_eq!(a.map(|x| x + 1.0).sum(), a.sum() + 4.0);
        let b = Field2D::filled(2, 2, 2.0);
        assert_eq!(a.hadamard(&b).sum(), 2.0 * a.sum());
        let mut c = a.clone();
        c.map_inplace(|x| x * 0.0);
        assert_eq!(c.sum(), 0.0);
    }

    #[test]
    fn debug_is_compact_for_large_fields() {
        let f = ramp(100, 100);
        let s = format!("{f:?}");
        assert!(s.contains("100x100"));
        assert!(s.len() < 200);
    }
}
