//! Weighted-accumulation helpers for stitching overlapping tiles.
//!
//! The batch runtime partitions a large field into overlapping tiles, runs
//! ILT per tile, and reassembles the results. Seam handling needs two
//! primitives beyond [`Field2D::crop`] / [`Field2D::paste`]: accumulating a
//! weighted tile contribution into a running sum, and normalizing the sum by
//! the accumulated weights. Keeping them here (shape-generic, no tiling
//! policy) lets any stitching scheme — hard crop, linear seam ramps, or
//! future windowed blends — be expressed on top.

use crate::field::Field2D;

/// Adds `src .* weight` into `acc` and `weight` into `wacc`, both placed at
/// top-left corner `(r0, c0)`.
///
/// `acc` and `wacc` must have identical shapes; `src` and `weight` must have
/// identical shapes and fit inside `acc` at the given offset.
///
/// # Panics
///
/// Panics on any shape mismatch or out-of-bounds placement.
///
/// # Examples
///
/// ```
/// use ilt_field::{accumulate_weighted, normalize_weighted, Field2D};
///
/// let mut acc = Field2D::zeros(4, 4);
/// let mut wacc = Field2D::zeros(4, 4);
/// let tile = Field2D::filled(2, 2, 3.0);
/// let w = Field2D::filled(2, 2, 0.5);
/// accumulate_weighted(&mut acc, &mut wacc, &tile, &w, 1, 1);
/// accumulate_weighted(&mut acc, &mut wacc, &tile, &w, 1, 1);
/// let out = normalize_weighted(&acc, &wacc, 0.0);
/// assert_eq!(out[(1, 1)], 3.0); // (0.5*3 + 0.5*3) / (0.5 + 0.5)
/// assert_eq!(out[(0, 0)], 0.0); // uncovered pixels fall back
/// ```
pub fn accumulate_weighted(
    acc: &mut Field2D,
    wacc: &mut Field2D,
    src: &Field2D,
    weight: &Field2D,
    r0: usize,
    c0: usize,
) {
    assert_eq!(acc.shape(), wacc.shape(), "accumulator shapes differ");
    assert_eq!(src.shape(), weight.shape(), "tile and weight shapes differ");
    let (rows, cols) = src.shape();
    let (arows, acols) = acc.shape();
    assert!(
        r0 + rows <= arows && c0 + cols <= acols,
        "weighted paste window out of bounds"
    );
    let s = src.as_slice();
    let w = weight.as_slice();
    let a = acc.as_mut_slice();
    let wa = wacc.as_mut_slice();
    for r in 0..rows {
        let dst = (r0 + r) * acols + c0;
        let srco = r * cols;
        for c in 0..cols {
            a[dst + c] += s[srco + c] * w[srco + c];
            wa[dst + c] += w[srco + c];
        }
    }
}

/// Divides `acc` by `wacc` pixel-wise, yielding the blended field; pixels
/// with (numerically) zero accumulated weight take `fallback`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn normalize_weighted(acc: &Field2D, wacc: &Field2D, fallback: f64) -> Field2D {
    assert_eq!(acc.shape(), wacc.shape(), "accumulator shapes differ");
    acc.zip_map(wacc, |a, w| if w > 1e-12 { a / w } else { fallback })
}

/// A separable seam-ramp weight profile along one axis of a tile window.
///
/// Returns `len` weights that are 1 in the interior and ramp linearly down
/// to `1/(2*band)`-steps across a `2*band`-pixel seam at each side flagged
/// as having a neighbor. Two adjacent tiles whose ramps overlap by exactly
/// `2*band` pixels produce weights that sum to 1 at every seam pixel, so
/// blending is a convex combination and exact where the tiles agree.
///
/// With `band == 0` (or no neighbor) the profile is all ones, which makes
/// stitching a hard crop.
///
/// # Examples
///
/// ```
/// use ilt_field::seam_ramp;
///
/// let w = seam_ramp(6, 1, false, true);
/// assert_eq!(w[0], 1.0);              // interior side: full weight
/// assert!(w[5] < w[4] && w[4] < 1.0); // ramp toward the seam side
/// // A neighbor overlapping the last two pixels carries the complement:
/// let other = seam_ramp(6, 1, true, false);
/// assert!((w[4] + other[0] - 1.0).abs() < 1e-12);
/// assert!((w[5] + other[1] - 1.0).abs() < 1e-12);
/// ```
pub fn seam_ramp(len: usize, band: usize, ramp_lo: bool, ramp_hi: bool) -> Vec<f64> {
    let mut w = vec![1.0; len];
    if band == 0 {
        return w;
    }
    let span = (2 * band) as f64;
    for i in 0..(2 * band).min(len) {
        // Weight at distance i from the edge: (i + 0.5) / (2*band); the
        // mirrored profile of the neighboring tile contributes the
        // complement, so the pair sums to exactly 1.
        let v = (i as f64 + 0.5) / span;
        if ramp_lo {
            w[i] = w[i].min(v);
        }
        if ramp_hi {
            w[len - 1 - i] = w[len - 1 - i].min(v);
        }
    }
    w
}

/// Builds a 2-D tile weight field as the outer product of two seam profiles.
///
/// # Panics
///
/// Panics if `rows * cols` overflows the field size invariants (never in
/// practice).
pub fn seam_weights(
    rows: usize,
    cols: usize,
    band: usize,
    neighbors: [bool; 4],
) -> Field2D {
    let [up, down, left, right] = neighbors;
    let wr = seam_ramp(rows, band, up, down);
    let wc = seam_ramp(cols, band, left, right);
    Field2D::from_fn(rows, cols, |r, c| wr[r] * wc[c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_ramps_sum_to_one() {
        // Two tiles overlapping by 2*band px: complements must sum to 1.
        let band = 3;
        let a = seam_ramp(16, band, false, true); // ramps at its high end
        let b = seam_ramp(16, band, true, false); // ramps at its low end
        for i in 0..2 * band {
            // a's last 2*band pixels overlap b's first 2*band pixels.
            let sum = a[16 - 2 * band + i] + b[i];
            assert!((sum - 1.0).abs() < 1e-12, "seam weight sum {sum} at {i}");
        }
    }

    #[test]
    fn zero_band_is_hard_crop() {
        assert!(seam_ramp(8, 0, true, true).iter().all(|&w| w == 1.0));
    }

    #[test]
    fn interior_weight_is_one() {
        let w = seam_ramp(32, 4, true, true);
        for &v in &w[8..24] {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn weighted_accumulate_round_trips_constant_fields() {
        let mut acc = Field2D::zeros(8, 8);
        let mut wacc = Field2D::zeros(8, 8);
        // Two half-overlapping tiles with complementary ramps reproduce a
        // constant field exactly.
        let left = Field2D::filled(8, 6, 2.5);
        let right = Field2D::filled(8, 6, 2.5);
        let wl = seam_weights(8, 6, 1, [false, false, false, true]);
        let wr = seam_weights(8, 6, 1, [false, false, true, false]);
        accumulate_weighted(&mut acc, &mut wacc, &left, &wl, 0, 0);
        accumulate_weighted(&mut acc, &mut wacc, &right, &wr, 0, 2);
        let out = normalize_weighted(&acc, &wacc, -1.0);
        for &v in out.as_slice() {
            assert!((v - 2.5).abs() < 1e-12, "blended value {v}");
        }
    }

    #[test]
    fn uncovered_pixels_take_fallback() {
        let acc = Field2D::zeros(4, 4);
        let wacc = Field2D::zeros(4, 4);
        let out = normalize_weighted(&acc, &wacc, 7.0);
        assert!(out.as_slice().iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_paste_panics() {
        let mut acc = Field2D::zeros(4, 4);
        let mut wacc = Field2D::zeros(4, 4);
        let t = Field2D::zeros(3, 3);
        let w = Field2D::filled(3, 3, 1.0);
        accumulate_weighted(&mut acc, &mut wacc, &t, &w, 2, 2);
    }
}
