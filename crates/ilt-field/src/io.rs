//! Minimal image export for inspecting masks and wafer images.
//!
//! The bench harness dumps optimized masks (Figs. 1, 4, 6, 7, 8 of the
//! paper) as binary PGM, which every common viewer understands and which
//! needs no external encoder.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::field::Field2D;

/// Reads an 8-bit binary PGM (`P5`) image into a field with values scaled
/// to `[0, 1]`.
///
/// Only the subset written by [`write_pgm`] is supported (single `P5`
/// raster, maxval <= 255, `#` comments allowed in the header).
///
/// # Errors
///
/// Returns an I/O error for malformed headers, unsupported formats or a
/// truncated payload.
///
/// # Examples
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// use ilt_field::read_pgm;
/// let mask = read_pgm("mask.pgm")?;
/// assert!(mask.max() <= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<Field2D> {
    parse_pgm(&std::fs::read(path)?)
}

/// Parses an in-memory 8-bit binary PGM (`P5`) image; the byte-level core
/// of [`read_pgm`], also used for targets arriving over the wire.
///
/// # Errors
///
/// Returns `InvalidData` for malformed headers, unsupported formats or a
/// truncated payload.
pub fn parse_pgm(bytes: &[u8]) -> io::Result<Field2D> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    // Tokenize the header: magic, width, height, maxval; '#' starts a
    // comment running to end of line.
    let mut pos = 0usize;
    let mut tokens: Vec<String> = Vec::new();
    while tokens.len() < 4 && pos < bytes.len() {
        match bytes[pos] {
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            c if c.is_ascii_whitespace() => pos += 1,
            _ => {
                let start = pos;
                while pos < bytes.len()
                    && !bytes[pos].is_ascii_whitespace()
                    && bytes[pos] != b'#'
                {
                    pos += 1;
                }
                tokens.push(
                    std::str::from_utf8(&bytes[start..pos])
                        .map_err(|_| bad("non-ascii header"))?
                        .to_string(),
                );
            }
        }
    }
    if tokens.len() < 4 {
        return Err(bad("truncated PGM header"));
    }
    if tokens[0] != "P5" {
        return Err(bad("only binary P5 PGM is supported"));
    }
    let cols: usize = tokens[1].parse().map_err(|_| bad("bad width"))?;
    let rows: usize = tokens[2].parse().map_err(|_| bad("bad height"))?;
    let maxval: u32 = tokens[3].parse().map_err(|_| bad("bad maxval"))?;
    if maxval == 0 || maxval > 255 {
        return Err(bad("only 8-bit PGM is supported"));
    }
    // Exactly one whitespace byte separates the header from the raster.
    pos += 1;
    let need = rows * cols;
    if bytes.len() < pos + need {
        return Err(bad("truncated PGM payload"));
    }
    let inv = 1.0 / f64::from(maxval);
    let data: Vec<f64> =
        bytes[pos..pos + need].iter().map(|&b| f64::from(b) * inv).collect();
    Ok(Field2D::from_vec(rows, cols, data))
}

/// Writes a field as an 8-bit binary PGM (`P5`) image.
///
/// Values are linearly mapped from `[lo, hi]` to `[0, 255]` and clamped.
/// Pass `(0.0, 1.0)` for masks and wafer images.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
///
/// # Panics
///
/// Panics if `hi <= lo`.
///
/// # Examples
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// use ilt_field::{Field2D, write_pgm};
/// let mask = Field2D::filled(64, 64, 1.0);
/// write_pgm(&mask, "mask.pgm", 0.0, 1.0)?;
/// # Ok(())
/// # }
/// ```
pub fn write_pgm(f: &Field2D, path: impl AsRef<Path>, lo: f64, hi: f64) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&pgm_bytes(f, lo, hi))?;
    w.flush()
}

/// Serializes a field as an in-memory 8-bit binary PGM (`P5`) image; the
/// byte-level core of [`write_pgm`], also used for masks served over the
/// wire. Same value mapping and clamping as [`write_pgm`].
///
/// # Panics
///
/// Panics if `hi <= lo`.
pub fn pgm_bytes(f: &Field2D, lo: f64, hi: f64) -> Vec<u8> {
    assert!(hi > lo, "invalid range [{lo}, {hi}]");
    let mut out = format!("P5\n{} {}\n255\n", f.cols(), f.rows()).into_bytes();
    let scale = 255.0 / (hi - lo);
    out.extend(
        f.as_slice()
            .iter()
            .map(|&v| ((v - lo) * scale).clamp(0.0, 255.0).round() as u8),
    );
    out
}

/// Writes a field as a dense CSV matrix (one row per line).
///
/// Used for figure data series (e.g. the Fig. 5 sigmoid curves).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(f: &Field2D, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for r in 0..f.rows() {
        let row: Vec<String> = f.row(r).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_payload() {
        let dir = std::env::temp_dir().join("ilt_field_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let f = Field2D::from_vec(1, 3, vec![0.0, 0.5, 1.0]);
        write_pgm(&f, &path, 0.0, 1.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert!(bytes.starts_with(b"P5\n3 1\n255\n"));
        assert_eq!(&bytes[header_end..], &[0u8, 128, 255]);
    }

    #[test]
    fn csv_roundtrip_by_eye() {
        let dir = std::env::temp_dir().join("ilt_field_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let f = Field2D::from_vec(2, 2, vec![1.0, 2.5, -3.0, 0.0]);
        write_csv(&f, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "1,2.5\n-3,0\n");
    }

    #[test]
    fn pgm_roundtrip() {
        let dir = std::env::temp_dir().join("ilt_field_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.pgm");
        let f = Field2D::from_fn(5, 7, |r, c| ((r * 7 + c) as f64) / 34.0);
        write_pgm(&f, &path, 0.0, 1.0).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.shape(), (5, 7));
        for (a, b) in f.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn read_pgm_handles_comments() {
        let dir = std::env::temp_dir().join("ilt_field_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("comment.pgm");
        let mut bytes = b"P5\n# a comment\n2 2\n255\n".to_vec();
        bytes.extend_from_slice(&[0u8, 255, 128, 64]);
        std::fs::write(&path, bytes).unwrap();
        let f = read_pgm(&path).unwrap();
        assert_eq!(f.shape(), (2, 2));
        assert_eq!(f[(0, 1)], 1.0);
    }

    #[test]
    fn read_pgm_rejects_bad_input() {
        let dir = std::env::temp_dir().join("ilt_field_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p6 = dir.join("bad.pgm");
        std::fs::write(&p6, b"P6\n2 2\n255\nxxxxxxxxxxxx").unwrap();
        assert!(read_pgm(&p6).is_err());
        let trunc = dir.join("trunc.pgm");
        std::fs::write(&trunc, b"P5\n4 4\n255\nxy").unwrap();
        assert!(read_pgm(&trunc).is_err());
    }

    #[test]
    fn in_memory_pgm_roundtrips_without_touching_disk() {
        let f = Field2D::from_fn(3, 5, |r, c| ((r * 5 + c) as f64) / 14.0);
        let bytes = pgm_bytes(&f, 0.0, 1.0);
        assert!(bytes.starts_with(b"P5\n5 3\n255\n"));
        let back = parse_pgm(&bytes).unwrap();
        assert_eq!(back.shape(), (3, 5));
        for (a, b) in f.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-12, "{a} vs {b}");
        }
        assert!(parse_pgm(b"P5\n2 2\n255\nab").is_err(), "truncated payload");
    }

    #[test]
    fn pgm_clamps_out_of_range() {
        let dir = std::env::temp_dir().join("ilt_field_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clamp.pgm");
        let f = Field2D::from_vec(1, 2, vec![-1.0, 2.0]);
        write_pgm(&f, &path, 0.0, 1.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        assert_eq!(&bytes[n - 2..], &[0u8, 255]);
    }
}
