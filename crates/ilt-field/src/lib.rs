//! 2-D scalar fields and the pooling/resampling operators of multi-level ILT.
//!
//! Masks `M`, aerial images `I` and wafer images `Z` in the DAC 2023
//! multi-level ILT paper are all `N x N` real grids. This crate provides the
//! shared container ([`Field2D`]) plus exactly the operators Algorithm 1
//! needs:
//!
//! * [`avg_pool_down`] — `AvgPool(kernel = s, stride = s)`, lines 2/9,
//! * [`avg_pool_same`] — `AvgPool(kernel = 3, stride = 1)`, line 11
//!   (the Section III-D contour smoother),
//! * [`upsample_nearest`] — `Upsample(M_s)`, line 7,
//! * thresholding and XOR counting for the resist model and PVBand metric.
//!
//! # Example
//!
//! ```
//! use ilt_field::{avg_pool_down, upsample_nearest, Field2D};
//!
//! let target = Field2D::from_fn(8, 8, |r, c| if r >= 2 && r < 6 && c >= 2 && c < 6 { 1.0 } else { 0.0 });
//! let reduced = avg_pool_down(&target, 2);      // Z_{t,s}, Algorithm 1 line 2
//! let restored = upsample_nearest(&reduced, 2); // M, Algorithm 1 line 7
//! assert_eq!(restored.shape(), target.shape());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blend;
mod field;
mod io;
mod resample;

pub use blend::{accumulate_weighted, normalize_weighted, seam_ramp, seam_weights};
pub use field::Field2D;
pub use io::{parse_pgm, pgm_bytes, read_pgm, write_csv, write_pgm};
pub use resample::{avg_pool_down, avg_pool_same, upsample_bilinear, upsample_nearest};
